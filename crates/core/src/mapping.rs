//! Fusion mapping & routing (paper §6).
//!
//! Embeds the irregular fusion graph into the regular RSG grid. The
//! in-layer mapper traverses edges in a *cycle-prioritized breadth-first
//! order* (cycle edges before tree edges), places nodes greedily, and
//! evaluates candidates with the paper's heuristic cost
//!
//! ```text
//! H = occupied_area + #partially_blocked_nodes + α · #totally_blocked_nodes
//! ```
//!
//! Edges between non-adjacent positions are *routed*: a path of auxiliary
//! resource states performs consecutive fusions (path length ≥ 2 cells in
//! real hardware; paper Fig. 6d/11). When a layer fills up, remaining work
//! moves to a freshly allocated layer and the nodes left with unmapped
//! edges become *incomplete nodes*, later connected by **inter-layer
//! shuffling** on dedicated layers between the 2-D layouts (paper
//! Fig. 10).
//!
//! # Determinism
//!
//! The entire placement path runs on dense, row-major grids
//! ([`oneq_hardware::CellGrid`]) — no hashed-map iteration anywhere, so
//! compiling the same circuit twice always yields bit-identical layouts,
//! depth, and fusion counts. The only hashed containers left are
//! lookup-only sets (`mapped_edges`) whose iteration order is never
//! observed. Tie-breaks are fixed and documented: candidate cells are
//! scored in coupling-neighbourhood order, BFS frontiers expand in that
//! same order, and nearest-free-cell searches scan Manhattan rings in
//! row-major order (see the private `Mapper::pick_seed_cell`).

use oneq_graph::{biconnected, Edge, Graph, NodeId};
use oneq_hardware::{BfsScratch, CellGrid, LayerGeometry, Position};
use std::collections::{HashMap, HashSet, VecDeque};

/// What occupies a grid cell in a layer layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellUse {
    /// A fusion-graph node (a resource state carrying graph-state qubits).
    Node(NodeId),
    /// An auxiliary resource state forwarding a routed fusion path.
    Routing(Edge),
}

/// Mapper tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct MappingOptions {
    /// Weight of totally blocked nodes in the cost function (`α`; the
    /// paper suggests the maximum degree of the physical layer).
    pub alpha: f64,
    /// Maximum routed-path length explored by the in-layer router.
    pub max_route_len: usize,
    /// Number of placement candidates scored per node.
    pub candidate_limit: usize,
    /// Traverse cycle edges before tree edges (paper §6); disable for the
    /// plain-BFS ablation.
    pub cycle_priority: bool,
    /// Allow in-layer routing through auxiliary resource states; disable
    /// for the routing ablation (everything non-adjacent then shuffles).
    pub allow_routing: bool,
}

impl Default for MappingOptions {
    fn default() -> Self {
        MappingOptions {
            alpha: 64.0,
            max_route_len: 14,
            candidate_limit: 24,
            cycle_priority: true,
            allow_routing: true,
        }
    }
}

/// The layout of one (possibly extended) physical layer, backed by a
/// dense row-major [`CellGrid`].
#[derive(Debug, Clone)]
pub struct LayerLayout {
    grid: CellGrid<CellUse>,
    /// Placements in placement order — the deterministic iteration the
    /// scoring loop uses.
    placed: Vec<(NodeId, Position)>,
    /// O(1) node -> position lookup (indexed by `NodeId::index`).
    node_pos: Vec<Option<Position>>,
    /// Auxiliary routing cells consumed (tracked incrementally).
    routing: usize,
}

impl LayerLayout {
    fn new(geometry: LayerGeometry, node_count: usize) -> Self {
        LayerLayout {
            grid: CellGrid::new(geometry),
            placed: Vec::new(),
            node_pos: vec![None; node_count],
            routing: 0,
        }
    }

    /// Grid geometry of this layout.
    pub fn geometry(&self) -> LayerGeometry {
        self.grid.geometry()
    }

    /// The dense occupancy grid.
    pub fn grid(&self) -> &CellGrid<CellUse> {
        &self.grid
    }

    /// Occupant of `p` (`None` when free or outside the layer).
    pub fn cell(&self, p: Position) -> Option<CellUse> {
        self.grid.get(p).copied()
    }

    /// Placements in placement order.
    pub fn placed_nodes(&self) -> &[(NodeId, Position)] {
        &self.placed
    }

    /// Number of fusion-graph nodes placed on this layer.
    pub fn placed_count(&self) -> usize {
        self.placed.len()
    }

    /// Position of `n` if it lives on this layer.
    pub fn position_of(&self, n: NodeId) -> Option<Position> {
        self.node_pos.get(n.index()).copied().flatten()
    }

    fn is_free(&self, p: Position) -> bool {
        self.grid.is_free(p)
    }

    /// Free cells of `p`'s coupling neighbourhood, in neighbourhood order.
    fn free_neighbors_array(
        &self,
        p: Position,
    ) -> ([Position; oneq_hardware::MAX_NEIGHBORS], usize) {
        let (nbuf, nn) = self.geometry().neighbors_array(p);
        let mut out = [Position::new(0, 0); oneq_hardware::MAX_NEIGHBORS];
        let mut k = 0;
        for &q in &nbuf[..nn] {
            if self.is_free(q) {
                out[k] = q;
                k += 1;
            }
        }
        (out, k)
    }

    fn count_free_neighbors(&self, p: Position) -> usize {
        let (nbuf, nn) = self.geometry().neighbors_array(p);
        nbuf[..nn].iter().filter(|&&q| self.is_free(q)).count()
    }

    fn place(&mut self, n: NodeId, p: Position) {
        debug_assert!(self.is_free(p), "cell {p} already used");
        self.grid.set(p, CellUse::Node(n));
        self.placed.push((n, p));
        self.node_pos[n.index()] = Some(p);
    }

    fn add_routing(&mut self, p: Position, edge: Edge) {
        debug_assert!(self.is_free(p), "cell {p} already used");
        self.grid.set(p, CellUse::Routing(edge));
        self.routing += 1;
    }

    /// Number of auxiliary routing cells consumed.
    pub fn routing_cells(&self) -> usize {
        self.routing
    }

    /// Bounding-box area of everything mapped so far (the cost function's
    /// `occupied_area`); O(1) via the grid's incremental bounding box.
    pub fn occupied_area(&self) -> usize {
        self.grid.bounding_box_area()
    }
}

/// An edge mapped across layers, resolved by shuffling.
#[derive(Debug, Clone, Copy)]
pub struct ShuffleEdge {
    /// The fusion-graph edge (or cross-partition edge id pair).
    pub edge: Edge,
    /// Source layer index and position.
    pub from: (usize, Position),
    /// Target layer index and position.
    pub to: (usize, Position),
}

/// Profiling counters from one [`map_graph`] run: where the mapper spent
/// its effort, how congested the grid got, and whether scratch buffers were
/// reused or reallocated. Pure observation — collecting these never changes
/// a placement or routing decision, so mapping stays bit-identical with
/// profiling on (the determinism suite pins this).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MapProfile {
    /// BFS searches started by the in-layer router.
    pub bfs_searches: u64,
    /// Cells expanded (newly visited) across all BFS searches.
    pub bfs_expansions: u64,
    /// Router scratch re-arms that had to grow the buffers.
    pub scratch_grows: u64,
    /// Router scratch re-arms that reused the buffers allocation-free.
    pub scratch_reuses: u64,
    /// Manhattan ring scans for seed/forced placements.
    pub seed_scans: u64,
    /// Largest ring radius a seed scan had to reach before finding a free
    /// cell — a congestion signal: 0 means the target itself was free.
    pub seed_scan_radius_max: u64,
    /// High-water mark of occupied cells on any single layer.
    pub occupancy_peak: u64,
    /// Total cells consumed by routed fusion paths across all layers.
    pub routing_cells: u64,
}

/// The result of mapping one fusion graph.
#[derive(Debug, Clone)]
pub struct MappingResult {
    /// In-layer layouts in allocation order.
    pub layouts: Vec<LayerLayout>,
    /// Edges realized by inter-layer shuffling.
    pub shuffled: Vec<ShuffleEdge>,
    /// Extra physical layers consumed by shuffling.
    pub shuffle_layers: usize,
    /// Fusions from directly mapped edges (1 each).
    pub direct_fusions: usize,
    /// Fusions from in-layer routed paths (path cells + 1 each).
    pub routed_fusions: usize,
    /// Fusions from shuffling (path cells + 1 each, includes the two
    /// temporal hops).
    pub shuffle_fusions: usize,
    /// Node placements: fusion node -> (layout index, position).
    pub placement: HashMap<NodeId, (usize, Position)>,
    /// Every input edge the mapper realized, in realization order: first
    /// the directly mapped / in-layer routed edges, then the shuffled
    /// ones. Contains each input edge exactly once.
    pub realized_edges: Vec<Edge>,
    /// Effort and congestion counters from this run.
    pub profile: MapProfile,
}

impl MappingResult {
    /// Total fusions performed by this mapping.
    pub fn total_fusions(&self) -> usize {
        self.direct_fusions + self.routed_fusions + self.shuffle_fusions
    }

    /// Physical layers consumed (each layout is one layer here; extended
    /// layers are accounted by the pipeline) plus shuffle layers.
    pub fn depth(&self) -> usize {
        self.layouts.len() + self.shuffle_layers
    }
}

/// Maps `fusion_graph` onto layers of `geometry`.
///
/// # Example
///
/// ```
/// use oneq::mapping::{map_graph, MappingOptions};
/// use oneq_graph::generators;
/// use oneq_hardware::LayerGeometry;
///
/// let g = generators::cycle(6);
/// let result = map_graph(&g, LayerGeometry::new(8, 8), &MappingOptions::default());
/// assert_eq!(result.layouts.len(), 1);
/// assert_eq!(result.total_fusions() >= 6, true);
/// ```
pub fn map_graph(
    fusion_graph: &Graph,
    geometry: LayerGeometry,
    options: &MappingOptions,
) -> MappingResult {
    Mapper::new(fusion_graph, geometry, *options).run()
}

struct Mapper<'g> {
    graph: &'g Graph,
    geometry: LayerGeometry,
    options: MappingOptions,
    /// Remaining unmapped edge count per node (the `r` of the blocking
    /// definition).
    remaining: Vec<usize>,
    /// Lookup-only membership set; never iterated (determinism).
    mapped_edges: HashSet<Edge>,
    /// Realized edges in realization order.
    realized: Vec<Edge>,
    layouts: Vec<LayerLayout>,
    /// Node -> (layout index, position), indexed by `NodeId::index`.
    node_place: Vec<Option<(usize, Position)>>,
    direct_fusions: usize,
    routed_fusions: usize,
    /// Reusable BFS buffers for the in-layer router.
    scratch: BfsScratch,
    seed_scans: u64,
    seed_scan_radius_max: u64,
}

impl<'g> Mapper<'g> {
    fn new(graph: &'g Graph, geometry: LayerGeometry, options: MappingOptions) -> Self {
        let remaining = graph.nodes().map(|n| graph.degree(n)).collect();
        let n = graph.node_count();
        Mapper {
            graph,
            geometry,
            options,
            remaining,
            mapped_edges: HashSet::new(),
            realized: Vec::with_capacity(graph.edge_count()),
            layouts: vec![LayerLayout::new(geometry, n)],
            node_place: vec![None; n],
            direct_fusions: 0,
            routed_fusions: 0,
            scratch: BfsScratch::new(),
            seed_scans: 0,
            seed_scan_radius_max: 0,
        }
    }

    fn run(mut self) -> MappingResult {
        let order = if self.options.cycle_priority {
            edge_order(self.graph)
        } else {
            plain_bfs_edge_order(self.graph)
        };
        let mut deferred: Vec<Edge> = Vec::new();

        for edge in order {
            if !self.try_map_edge(edge) {
                deferred.push(edge);
            }
        }

        // Re-try deferred edges on fresh layers until no progress is
        // possible; whatever remains becomes shuffle work.
        let mut pending = deferred;
        while !pending.is_empty() {
            self.push_layer();
            let mut next = Vec::new();
            let before = self.mapped_edges.len();
            for edge in pending {
                if !self.try_map_edge(edge) {
                    next.push(edge);
                }
            }
            if self.mapped_edges.len() == before {
                // No in-layer progress: everything left shuffles.
                pending = next;
                break;
            }
            pending = next;
        }

        // Nodes without any in-partition edge (their edges are all
        // cross-partition) were never touched by the edge loop: place them
        // now — near a placed neighbor when one exists — so cross-edge
        // shuffling has coordinates for them.
        let unplaced: Vec<NodeId> = self
            .graph
            .nodes()
            .filter(|n| self.node_place[n.index()].is_none())
            .collect();
        for n in unplaced {
            if self.node_place[n.index()].is_some() {
                continue; // placed as a neighbor hint target meanwhile
            }
            let hint = self
                .graph
                .neighbors(n)
                .iter()
                .find_map(|nb| self.node_place[nb.index()].map(|(_, p)| p));
            self.force_place(n, hint);
        }

        // Shuffle resolution for the remaining edges: both endpoints must
        // be placed somewhere first; stragglers land near their partner's
        // grid position so the shuffle path stays short.
        let mut shuffled = Vec::new();
        for edge in pending {
            let hint = self.node_place[edge.a().index()]
                .or(self.node_place[edge.b().index()])
                .map(|(_, p)| p);
            for n in [edge.a(), edge.b()] {
                if self.node_place[n.index()].is_none() {
                    self.force_place(n, hint);
                }
            }
            let (la, pa) = self.node_place[edge.a().index()].expect("endpoint placed");
            let (lb, pb) = self.node_place[edge.b().index()].expect("endpoint placed");
            shuffled.push(ShuffleEdge {
                edge,
                from: (la, pa),
                to: (lb, pb),
            });
            self.mapped_edges.insert(edge);
            self.realized.push(edge);
        }

        let (shuffle_layers, shuffle_fusions) = plan_shuffles(&shuffled, self.geometry);

        let placement: HashMap<NodeId, (usize, Position)> = self
            .node_place
            .iter()
            .enumerate()
            .filter_map(|(i, &slot)| slot.map(|lp| (NodeId::new(i), lp)))
            .collect();

        // The mapper only ever adds cells, so the end-of-run occupancy of
        // each layer IS its high-water mark.
        let profile = MapProfile {
            bfs_searches: self.scratch.searches(),
            bfs_expansions: self.scratch.visits(),
            scratch_grows: self.scratch.grows(),
            scratch_reuses: self.scratch.reuses(),
            seed_scans: self.seed_scans,
            seed_scan_radius_max: self.seed_scan_radius_max,
            occupancy_peak: self
                .layouts
                .iter()
                .map(|l| l.grid().occupied_cells() as u64)
                .max()
                .unwrap_or(0),
            routing_cells: self.layouts.iter().map(|l| l.routing_cells() as u64).sum(),
        };

        MappingResult {
            layouts: self.layouts,
            shuffled,
            shuffle_layers,
            direct_fusions: self.direct_fusions,
            routed_fusions: self.routed_fusions,
            shuffle_fusions,
            placement,
            realized_edges: self.realized,
            profile,
        }
    }

    /// Current working layout index (always the last one).
    fn cur(&self) -> usize {
        self.layouts.len() - 1
    }

    fn push_layer(&mut self) {
        self.layouts
            .push(LayerLayout::new(self.geometry, self.graph.node_count()));
    }

    fn try_map_edge(&mut self, edge: Edge) -> bool {
        if self.mapped_edges.contains(&edge) {
            return true;
        }
        let (u, v) = (edge.a(), edge.b());
        let pu = self.node_place[u.index()];
        let pv = self.node_place[v.index()];
        let cur = self.cur();

        let ok = match (pu, pv) {
            (None, None) => {
                if let Some(seed) = self.pick_seed_cell() {
                    self.place_node(u, seed);
                    self.attach_new_node(v, u, edge)
                } else {
                    false
                }
            }
            (Some((lu, _)), None) => {
                if lu == cur {
                    self.attach_new_node(v, u, edge)
                } else {
                    // u lives on an older layer: place v on the current
                    // layer; the edge itself shuffles.
                    false
                }
            }
            (None, Some((lv, _))) => {
                if lv == cur {
                    self.attach_new_node(u, v, edge)
                } else {
                    false
                }
            }
            (Some((lu, qu)), Some((lv, qv))) => {
                if lu == lv && lu == cur {
                    self.connect_placed(qu, qv, edge)
                } else if lu == lv {
                    // Both on a finished layer: route there if possible.
                    self.connect_on_layer(lu, qu, qv, edge)
                } else {
                    false
                }
            }
        };
        if ok {
            self.mark_mapped(edge);
        }
        ok
    }

    fn mark_mapped(&mut self, edge: Edge) {
        self.mapped_edges.insert(edge);
        self.realized.push(edge);
        self.remaining[edge.a().index()] -= 1;
        self.remaining[edge.b().index()] -= 1;
    }

    /// Seed position for a fresh component: the nearest free cell to the
    /// grid center, found by a deterministic Manhattan ring scan
    /// (see [`nearest_free_cell`] for the tie-break rule).
    fn pick_seed_cell(&mut self) -> Option<Position> {
        let center = Position::new(self.geometry.rows() / 2, self.geometry.cols() / 2);
        self.tracked_nearest_free(center)
    }

    /// [`nearest_free_cell`] on the current layer, with the scan counted
    /// and its ring radius folded into the congestion high-water mark.
    fn tracked_nearest_free(&mut self, target: Position) -> Option<Position> {
        self.seed_scans += 1;
        let found = nearest_free_cell(&self.layouts[self.cur()], target);
        if let Some(p) = found {
            self.seed_scan_radius_max = self.seed_scan_radius_max.max(p.manhattan(target) as u64);
        }
        found
    }

    fn place_node(&mut self, n: NodeId, p: Position) {
        let cur = self.cur();
        self.layouts[cur].place(n, p);
        self.node_place[n.index()] = Some((cur, p));
    }

    /// Places `node` connected to the already-placed `anchor`, directly
    /// adjacent when possible, else at the end of a routed path. Candidate
    /// cells are scored with the paper's cost function.
    fn attach_new_node(&mut self, node: NodeId, anchor: NodeId, edge: Edge) -> bool {
        let cur = self.cur();
        let (al, ap) = self.node_place[anchor.index()].expect("anchor placed");
        if al != cur {
            return false;
        }
        // Direct candidates: free neighbors of the anchor, scored in
        // neighbourhood order with strict improvement — ties keep the
        // earliest candidate.
        let (nbuf, nn) = self.layouts[cur].free_neighbors_array(ap);
        let direct = &nbuf[..nn];
        let mut best: Option<(f64, Position, Option<Vec<Position>>)> = None;
        for &cand in direct.iter().take(self.options.candidate_limit) {
            let cost = self.score_placement(node, cand, &[]);
            if best.as_ref().map_or(true, |(b, _, _)| cost < *b) {
                best = Some((cost, cand, None));
            }
        }
        // Routed candidates when the anchor is partially blocked: route to
        // a roomier area (paper Fig. 11b). Only explored when direct
        // placement is impossible or the node still has many edges.
        let need_room = self.remaining[node.index()] > direct.len();
        if self.options.allow_routing && (direct.is_empty() || need_room) {
            let needed = self.remaining[node.index()].saturating_sub(1);
            let routed = route_to_open_area(
                &self.layouts[cur],
                ap,
                needed,
                self.options.max_route_len,
                &mut self.scratch,
            );
            if let Some((path, dest)) = routed {
                let cost = self.score_placement(node, dest, &path);
                if best.as_ref().map_or(true, |(b, _, _)| cost < *b) {
                    best = Some((cost, dest, Some(path)));
                }
            }
        }
        match best {
            Some((_, dest, maybe_path)) => {
                if let Some(path) = maybe_path {
                    let cur = self.cur();
                    for &cell in &path {
                        self.layouts[cur].add_routing(cell, edge);
                    }
                    self.routed_fusions += path.len() + 1;
                } else {
                    self.direct_fusions += 1;
                }
                self.place_node(node, dest);
                true
            }
            None => false,
        }
    }

    /// Connects two nodes already placed on the current layer.
    fn connect_placed(&mut self, pa: Position, pb: Position, edge: Edge) -> bool {
        if pa.manhattan(pb) == 1 {
            self.direct_fusions += 1;
            return true;
        }
        self.connect_on_layer(self.cur(), pa, pb, edge)
    }

    /// Routes a fusion path between two positions on layer `layer`.
    fn connect_on_layer(&mut self, layer: usize, pa: Position, pb: Position, edge: Edge) -> bool {
        if pa.manhattan(pb) == 1 {
            self.direct_fusions += 1;
            return true;
        }
        if !self.options.allow_routing {
            return false;
        }
        let path = route_path(
            &self.layouts[layer],
            pa,
            pb,
            self.options.max_route_len,
            &mut self.scratch,
        );
        match path {
            Some(cells) => {
                for &cell in &cells {
                    self.layouts[layer].add_routing(cell, edge);
                }
                self.routed_fusions += cells.len() + 1;
                true
            }
            None => false,
        }
    }

    /// The paper's heuristic cost of a tentative placement.
    ///
    /// All terms run on the dense grid: the area term extends the grid's
    /// incremental bounding box with the tentative cells (O(path)), and
    /// the blocking terms iterate placements in placement order with O(1)
    /// free-cell queries — no per-candidate set construction.
    fn score_placement(&self, node: NodeId, cand: Position, path: &[Position]) -> f64 {
        let layout = &self.layouts[self.cur()];
        // Occupied-area term with the tentative cells added.
        let (mut rmin, mut rmax, mut cmin, mut cmax) = layout
            .grid()
            .bounding_box()
            .unwrap_or((cand.row, cand.row, cand.col, cand.col));
        let mut consider = |p: Position| {
            rmin = rmin.min(p.row);
            rmax = rmax.max(p.row);
            cmin = cmin.min(p.col);
            cmax = cmax.max(p.col);
        };
        consider(cand);
        for &p in path {
            consider(p);
        }
        let area = (rmax - rmin + 1) * (cmax - cmin + 1);

        // Blocking terms over placed nodes, with the tentative occupancy
        // (the candidate cell plus the routed path, if any).
        let tentatively_free = |q: Position| layout.is_free(q) && q != cand && !path.contains(&q);
        let geometry = self.geometry;
        let mut partially = 0usize;
        let mut totally = 0usize;
        let mut assess = |p: Position, r: usize| {
            if r == 0 {
                return;
            }
            let (nbuf, nn) = geometry.neighbors_array(p);
            let free = nbuf[..nn].iter().filter(|&&q| tentatively_free(q)).count();
            if free == 0 {
                totally += 1;
            } else if r > free {
                partially += 1;
            }
        };
        for &(n, p) in layout.placed_nodes() {
            assess(p, self.remaining[n.index()]);
        }
        assess(cand, self.remaining[node.index()].saturating_sub(1));

        area as f64 + partially as f64 + self.options.alpha * totally as f64
    }

    /// Places a node anywhere (used before shuffling so every endpoint has
    /// coordinates), preferring cells near `hint`. Allocates a new layer
    /// when everything is full.
    fn force_place(&mut self, n: NodeId, hint: Option<Position>) {
        let target = hint.unwrap_or(Position::new(
            self.geometry.rows() / 2,
            self.geometry.cols() / 2,
        ));
        if let Some(p) = self.tracked_nearest_free(target) {
            self.place_node(n, p);
            return;
        }
        self.push_layer();
        let seed = self.pick_seed_cell().expect("fresh layer always has room");
        self.place_node(n, seed);
    }
}

/// The free cell nearest to `target` by Manhattan distance, or `None` when
/// the layer is full.
///
/// Scans Manhattan rings of increasing radius around `target`; within a
/// ring, cells are visited in row-major order. The tie-break rule is
/// therefore: **smallest distance first, then smallest row, then smallest
/// column** — fixed by construction, independent of any container's
/// iteration order, and O(cells visited) instead of a full-area scan.
fn nearest_free_cell(layout: &LayerLayout, target: Position) -> Option<Position> {
    let geom = layout.geometry();
    // Any in-grid cell is within rows+cols of any in-grid target.
    let max_d = geom.rows() + geom.cols();
    for d in 0..=max_d {
        let rlo = target.row.saturating_sub(d);
        let rhi = (target.row + d).min(geom.rows() - 1);
        for r in rlo..=rhi {
            let k = d - target.row.abs_diff(r);
            if let Some(c) = target.col.checked_sub(k) {
                let p = Position::new(r, c);
                if layout.is_free(p) {
                    return Some(p);
                }
            }
            if k > 0 {
                let c = target.col + k;
                if c < geom.cols() {
                    let p = Position::new(r, c);
                    if layout.is_free(p) {
                        return Some(p);
                    }
                }
            }
        }
    }
    None
}

/// Cycle-prioritized breadth-first edge order (paper §6): starting from a
/// highest-degree node, BFS the graph; at each node emit unvisited cycle
/// edges before tree edges.
pub fn edge_order(graph: &Graph) -> Vec<Edge> {
    let bridges = biconnected::bridges(graph);
    let mut order = Vec::with_capacity(graph.edge_count());
    let mut seen_edges: HashSet<Edge> = HashSet::new();
    let mut visited = vec![false; graph.node_count()];

    let mut components: Vec<NodeId> = graph.nodes().collect();
    // Highest-degree seeds first for deterministic, hub-centric layouts.
    components.sort_by_key(|&n| std::cmp::Reverse(graph.degree(n)));

    // One scratch buffer reused across every BFS step: neighbor lists must
    // be sorted before emission, but allocating per node would put a heap
    // round-trip in the innermost compile loop.
    let mut incident: Vec<NodeId> = Vec::new();
    for seed in components {
        if visited[seed.index()] {
            continue;
        }
        visited[seed.index()] = true;
        let mut queue = VecDeque::from([seed]);
        while let Some(u) = queue.pop_front() {
            incident.clear();
            incident.extend_from_slice(graph.neighbors(u));
            incident.sort_by_key(|&w| {
                (
                    bridges.contains(&Edge::new(u, w)),
                    std::cmp::Reverse(graph.degree(w)),
                    w,
                )
            });
            for &w in &incident {
                let e = Edge::new(u, w);
                if seen_edges.insert(e) {
                    order.push(e);
                }
                if !visited[w.index()] {
                    visited[w.index()] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    // Global cycle priority: all cycle edges (in BFS discovery order)
    // before all tree edges (same order) — tree edges are flexible and
    // can attach later without hurting compactness (paper §6).
    let (cycles, trees): (Vec<Edge>, Vec<Edge>) =
        order.into_iter().partition(|e| !bridges.contains(e));
    cycles.into_iter().chain(trees).collect()
}

/// Plain breadth-first edge order without cycle priority (the ablation
/// counterpart of [`edge_order`]).
pub fn plain_bfs_edge_order(graph: &Graph) -> Vec<Edge> {
    let mut order = Vec::with_capacity(graph.edge_count());
    let mut seen_edges: HashSet<Edge> = HashSet::new();
    let mut visited = vec![false; graph.node_count()];
    let mut seeds: Vec<NodeId> = graph.nodes().collect();
    seeds.sort_by_key(|&n| std::cmp::Reverse(graph.degree(n)));
    for seed in seeds {
        if visited[seed.index()] {
            continue;
        }
        visited[seed.index()] = true;
        let mut queue = VecDeque::from([seed]);
        while let Some(u) = queue.pop_front() {
            for &w in graph.neighbors(u) {
                let e = Edge::new(u, w);
                if seen_edges.insert(e) {
                    order.push(e);
                }
                if !visited[w.index()] {
                    visited[w.index()] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    order
}

/// Row-major position of a flat cell index.
fn pos_at(geometry: LayerGeometry, idx: usize) -> Position {
    Position::new(idx / geometry.cols(), idx % geometry.cols())
}

/// BFS a free-cell path between `a` and `b` (exclusive); `None` when no
/// path of length `<= max_len` exists. Paths have at least one cell
/// (length >= 2 edges), matching the hardware constraint. Runs entirely on
/// the dense grid with the reusable [`BfsScratch`] — no per-call maps.
fn route_path(
    layout: &LayerLayout,
    a: Position,
    b: Position,
    max_len: usize,
    bfs: &mut BfsScratch,
) -> Option<Vec<Position>> {
    let geom = layout.geometry();
    bfs.begin(geom.area());
    let a_idx = geom.index_of(a);
    bfs.try_visit(a_idx, a_idx);
    let (nbuf, nn) = geom.neighbors_array(a);
    for &q in &nbuf[..nn] {
        if layout.is_free(q) {
            let qi = geom.index_of(q);
            bfs.try_visit(qi, a_idx);
            bfs.queue.push_back((qi as u32, 1));
        }
    }
    while let Some((pi, depth)) = bfs.queue.pop_front() {
        let pi = pi as usize;
        let p = pos_at(geom, pi);
        if p.manhattan(b) == 1 {
            let mut path = vec![p];
            let mut cur = pi;
            while bfs.prev(cur) != a_idx {
                cur = bfs.prev(cur);
                path.push(pos_at(geom, cur));
            }
            path.reverse();
            return Some(path);
        }
        if depth as usize >= max_len {
            continue;
        }
        let (nbuf, nn) = geom.neighbors_array(p);
        for &q in &nbuf[..nn] {
            if layout.is_free(q) {
                let qi = geom.index_of(q);
                if bfs.try_visit(qi, pi) {
                    bfs.queue.push_back((qi as u32, depth + 1));
                }
            }
        }
    }
    None
}

/// BFS through free cells from `from`'s neighborhood to any free cell
/// with at least `needed.min(3)` free neighbors. Returns the cells
/// strictly between `from` and the destination, plus the destination.
fn route_to_open_area(
    layout: &LayerLayout,
    from: Position,
    needed: usize,
    max_len: usize,
    bfs: &mut BfsScratch,
) -> Option<(Vec<Position>, Position)> {
    let geom = layout.geometry();
    bfs.begin(geom.area());
    let from_idx = geom.index_of(from);
    bfs.try_visit(from_idx, from_idx);
    let (nbuf, nn) = geom.neighbors_array(from);
    for &q in &nbuf[..nn] {
        if layout.is_free(q) {
            let qi = geom.index_of(q);
            bfs.try_visit(qi, from_idx);
            bfs.queue.push_back((qi as u32, 1));
        }
    }
    while let Some((pi, depth)) = bfs.queue.pop_front() {
        let pi = pi as usize;
        let p = pos_at(geom, pi);
        // Destination test: the paper requires routed paths of length
        // >= 2 (at least one auxiliary state between the endpoints).
        if depth >= 2 && layout.count_free_neighbors(p) >= needed.min(3) {
            // Reconstruct: cells strictly between `from` and `p`.
            let mut path = Vec::new();
            let mut cur = bfs.prev(pi);
            while cur != from_idx {
                path.push(pos_at(geom, cur));
                cur = bfs.prev(cur);
            }
            path.reverse();
            return Some((path, p));
        }
        if depth as usize >= max_len {
            continue;
        }
        let (nbuf, nn) = geom.neighbors_array(p);
        for &q in &nbuf[..nn] {
            if layout.is_free(q) {
                let qi = geom.index_of(q);
                if bfs.try_visit(qi, pi) {
                    bfs.queue.push_back((qi as u32, depth + 1));
                }
            }
        }
    }
    None
}

/// Plans the inter-layer shuffling: pairs are sorted by distance and each
/// shuffle layer hosts disjoint routing paths; a new layer is allocated
/// when paths would overlap (paper §6). Returns `(layers, fusions)`.
fn plan_shuffles(edges: &[ShuffleEdge], geometry: LayerGeometry) -> (usize, usize) {
    let pairs: Vec<(Position, Position)> = edges.iter().map(|s| (s.from.1, s.to.1)).collect();
    plan_position_shuffles(&pairs, geometry)
}

/// Plans shuffle layers for raw position pairs: used both for in-mapping
/// leftovers and for cross-partition edges (paper §4, dynamic allocation
/// of additional physical layers between partitions).
///
/// Pairs are connected by shortest coupled paths in ascending distance
/// order (stable sort: equal-distance pairs stay in input order); a fresh
/// layer is allocated whenever a path would overlap cells already used on
/// the current shuffle layer. Returns `(layers, fusions)` where each path
/// costs `cells + 1` fusions (the spatial chain plus the two temporal
/// hops into and out of the shuffle layer).
pub fn plan_position_shuffles(
    pairs: &[(Position, Position)],
    geometry: LayerGeometry,
) -> (usize, usize) {
    if pairs.is_empty() {
        return (0, 0);
    }
    let mut sorted: Vec<&(Position, Position)> = pairs.iter().collect();
    sorted.sort_by_key(|(a, b)| a.manhattan(*b));

    // First-fit packing of paths onto shuffle layers. Interior path cells
    // must be disjoint per layer; the endpoint cells may be shared (each
    // deferred edge spends a different photon of the endpoint's chain on
    // its temporal hop).
    let mut layers: Vec<CellGrid<()>> = vec![CellGrid::new(geometry)];
    let mut fusions = 0usize;
    for (pa, pb) in sorted {
        let cells = geometry.path_between(*pa, *pb);
        let interior: &[Position] = if cells.len() > 2 {
            &cells[1..cells.len() - 1]
        } else {
            &[]
        };
        let slot = layers
            .iter()
            .position(|used| interior.iter().all(|&c| used.is_free(c)));
        let slot = match slot {
            Some(s) => s,
            None => {
                layers.push(CellGrid::new(geometry));
                layers.len() - 1
            }
        };
        for &c in interior {
            layers[slot].set(c, ());
        }
        // Fusions: temporal hop in, spatial along the path, temporal out.
        fusions += cells.len() + 1;
    }
    (layers.len(), fusions)
}

/// Cells of an L-shaped (row-then-column) path from `a` to `b`, inclusive.
/// Kept as the reference implementation for orthogonal layers; production
/// shuffle planning uses `LayerGeometry::path_between`, which also handles
/// triangular and hexagonal couplings.
#[cfg_attr(not(test), allow(dead_code))]
fn l_path(a: Position, b: Position) -> Vec<Position> {
    let mut cells = Vec::new();
    let mut r = a.row;
    let c = a.col;
    cells.push(a);
    while r != b.row {
        r = if r < b.row { r + 1 } else { r - 1 };
        cells.push(Position::new(r, c));
    }
    let mut c = a.col;
    while c != b.col {
        c = if c < b.col { c + 1 } else { c - 1 };
        cells.push(Position::new(r, c));
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use oneq_graph::generators;

    fn opts() -> MappingOptions {
        MappingOptions::default()
    }

    #[test]
    fn small_cycle_fits_one_layer() {
        let g = generators::cycle(8);
        let r = map_graph(&g, LayerGeometry::new(8, 8), &opts());
        assert_eq!(r.layouts.len(), 1);
        assert_eq!(r.shuffle_layers, 0);
        assert!(r.total_fusions() >= 8);
        // Every node placed exactly once.
        assert_eq!(r.placement.len(), 8);
    }

    #[test]
    fn path_graph_maps_with_exact_fusions() {
        let g = generators::path(6);
        let r = map_graph(&g, LayerGeometry::new(8, 8), &opts());
        // A path can always be laid out contiguously: 5 direct fusions.
        assert_eq!(r.total_fusions(), 5);
        assert_eq!(r.routed_fusions, 0);
    }

    #[test]
    fn every_edge_is_realized() {
        for g in [
            generators::grid(3, 4),
            generators::star(9),
            generators::cycle(12),
            generators::complete(4),
        ] {
            let r = map_graph(&g, LayerGeometry::new(10, 10), &opts());
            // Each edge costs at least one fusion, and every node is placed.
            assert!(r.total_fusions() >= g.edge_count());
            assert_eq!(r.placement.len(), g.node_count());
            // The realized-edge ledger covers the input edge set exactly.
            let mut realized = r.realized_edges.clone();
            realized.sort();
            let mut input = g.sorted_edges();
            input.sort();
            assert_eq!(realized, input);
        }
    }

    #[test]
    fn star_hub_triggers_routing_or_more_layers() {
        // A degree-12 hub cannot keep all leaves adjacent on a grid: the
        // mapper must route (pink auxiliary dots of paper Fig. 11).
        let g = generators::star(13);
        let r = map_graph(&g, LayerGeometry::new(10, 10), &opts());
        assert!(r.total_fusions() > 12 || r.shuffle_layers > 0);
    }

    #[test]
    fn tiny_grid_forces_multiple_layers() {
        let g = generators::grid(5, 5); // 25 nodes
        let r = map_graph(&g, LayerGeometry::new(3, 3), &opts()); // 9 cells
        assert!(r.layouts.len() > 1, "25 nodes cannot fit 9 cells");
        assert_eq!(r.placement.len(), 25);
    }

    #[test]
    fn shuffle_edges_connect_across_layers() {
        let g = generators::grid(4, 4);
        let r = map_graph(&g, LayerGeometry::new(3, 3), &opts());
        if !r.shuffled.is_empty() {
            assert!(r.shuffle_layers >= 1);
            assert!(r.shuffle_fusions > 0);
        }
    }

    #[test]
    fn edge_order_prioritizes_cycles() {
        // Lollipop: triangle 0-1-2 with tail 2-3; the bridge must come
        // after the cycle edges.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let order = edge_order(&g);
        let bridge = Edge::new(NodeId::new(2), NodeId::new(3));
        let bridge_pos = order.iter().position(|&e| e == bridge).unwrap();
        assert_eq!(bridge_pos, 3, "bridge should be ordered last: {order:?}");
    }

    #[test]
    fn edge_order_covers_all_edges_once() {
        let g = generators::grid(4, 5);
        let order = edge_order(&g);
        assert_eq!(order.len(), g.edge_count());
        let unique: HashSet<Edge> = order.iter().copied().collect();
        assert_eq!(unique.len(), order.len());
    }

    #[test]
    fn l_path_is_contiguous() {
        let cells = l_path(Position::new(0, 0), Position::new(2, 3));
        assert_eq!(cells.len(), 6);
        for w in cells.windows(2) {
            assert_eq!(w[0].manhattan(w[1]), 1);
        }
        assert_eq!(l_path(Position::new(1, 1), Position::new(1, 1)).len(), 1);
    }

    #[test]
    fn routed_paths_have_min_length() {
        // route_to_open_area only returns paths with >= 1 intermediate
        // cell (total length >= 2), per the paper's hardware constraint.
        let g = generators::star(10);
        let r = map_graph(&g, LayerGeometry::new(12, 12), &opts());
        // All fusions accounted: direct are 1 each; routed are >= 2 each.
        assert!(r.routed_fusions == 0 || r.routed_fusions >= 2);
    }

    #[test]
    fn occupied_area_tracks_bounding_box() {
        let mut layout = LayerLayout::new(LayerGeometry::new(8, 8), 2);
        assert_eq!(layout.occupied_area(), 0);
        layout.place(NodeId::new(0), Position::new(2, 2));
        assert_eq!(layout.occupied_area(), 1);
        layout.place(NodeId::new(1), Position::new(4, 5));
        assert_eq!(layout.occupied_area(), 12);
    }

    #[test]
    fn larger_area_reduces_layer_count() {
        let g = generators::grid(6, 6);
        let small = map_graph(&g, LayerGeometry::new(5, 5), &opts());
        let large = map_graph(&g, LayerGeometry::new(12, 12), &opts());
        assert!(large.layouts.len() <= small.layouts.len());
        assert!(large.depth() <= small.depth());
    }

    #[test]
    fn plain_bfs_order_covers_all_edges() {
        let g = generators::grid(4, 4);
        let order = plain_bfs_edge_order(&g);
        assert_eq!(order.len(), g.edge_count());
        let unique: HashSet<Edge> = order.iter().copied().collect();
        assert_eq!(unique.len(), order.len());
    }

    #[test]
    fn position_shuffles_pack_disjoint_paths_on_one_layer() {
        // Two far-apart, non-overlapping pairs fit one shuffle layer.
        let pairs = [
            (Position::new(0, 0), Position::new(0, 3)),
            (Position::new(5, 0), Position::new(5, 3)),
        ];
        let (layers, fusions) = plan_position_shuffles(&pairs, LayerGeometry::new(8, 8));
        assert_eq!(layers, 1);
        assert_eq!(fusions, 2 * (4 + 1));
    }

    #[test]
    fn position_shuffles_split_overlapping_paths() {
        // Identical pairs overlap in the interior: second path needs a new
        // layer.
        let pairs = [
            (Position::new(0, 0), Position::new(0, 5)),
            (Position::new(0, 0), Position::new(0, 5)),
        ];
        let (layers, _) = plan_position_shuffles(&pairs, LayerGeometry::new(8, 8));
        assert_eq!(layers, 2);
    }

    #[test]
    fn position_shuffles_share_endpoints() {
        // Paths that only touch at an endpoint cell share a layer (the
        // temporal hops come from different photons of the chain).
        let pairs = [
            (Position::new(2, 2), Position::new(2, 0)),
            (Position::new(2, 2), Position::new(0, 2)),
        ];
        let (layers, _) = plan_position_shuffles(&pairs, LayerGeometry::new(8, 8));
        assert_eq!(layers, 1);
    }

    #[test]
    fn empty_shuffle_plan_is_free() {
        let (layers, fusions) = plan_position_shuffles(&[], LayerGeometry::new(4, 4));
        assert_eq!((layers, fusions), (0, 0));
    }

    #[test]
    fn disabled_routing_defers_instead() {
        let g = generators::star(10);
        let opts = MappingOptions {
            allow_routing: false,
            ..Default::default()
        };
        let r = map_graph(&g, LayerGeometry::new(10, 10), &opts);
        assert_eq!(r.routed_fusions, 0);
        assert_eq!(r.placement.len(), 10);
    }

    #[test]
    fn empty_graph_maps_trivially() {
        let g = Graph::new();
        let r = map_graph(&g, LayerGeometry::new(4, 4), &opts());
        assert_eq!(r.total_fusions(), 0);
        assert_eq!(r.depth(), 1); // one (empty) layer allocated
    }

    #[test]
    fn nearest_free_cell_breaks_ties_row_major() {
        // All four distance-1 neighbours of the target free: smallest row
        // wins; with the north cell occupied, west (same row as target,
        // smaller column) wins over east and south.
        let mut layout = LayerLayout::new(LayerGeometry::new(5, 5), 4);
        let target = Position::new(2, 2);
        layout.place(NodeId::new(0), target);
        assert_eq!(
            nearest_free_cell(&layout, target),
            Some(Position::new(1, 2)),
            "smallest row first"
        );
        layout.place(NodeId::new(1), Position::new(1, 2));
        assert_eq!(
            nearest_free_cell(&layout, target),
            Some(Position::new(2, 1)),
            "then smallest column"
        );
    }

    #[test]
    fn nearest_free_cell_on_full_layer_is_none() {
        let geom = LayerGeometry::new(2, 2);
        let mut layout = LayerLayout::new(geom, 4);
        for (i, p) in geom.positions().enumerate() {
            layout.place(NodeId::new(i), p);
        }
        assert_eq!(nearest_free_cell(&layout, Position::new(0, 0)), None);
    }

    #[test]
    fn nearest_free_cell_clips_rings_at_the_border() {
        // Target in a corner: rings extend off-grid and must be clipped.
        let mut layout = LayerLayout::new(LayerGeometry::new(3, 3), 1);
        layout.place(NodeId::new(0), Position::new(0, 0));
        assert_eq!(
            nearest_free_cell(&layout, Position::new(0, 0)),
            Some(Position::new(0, 1))
        );
    }

    #[test]
    fn mapping_twice_is_bit_identical() {
        for g in [
            generators::grid(5, 5),
            generators::star(12),
            generators::complete(5),
        ] {
            let a = map_graph(&g, LayerGeometry::new(7, 7), &opts());
            let b = map_graph(&g, LayerGeometry::new(7, 7), &opts());
            assert_eq!(a.placement, b.placement);
            assert_eq!(a.realized_edges, b.realized_edges);
            assert_eq!(a.profile, b.profile, "profile counters are deterministic");
            assert_eq!(a.total_fusions(), b.total_fusions());
            assert_eq!(a.depth(), b.depth());
            assert_eq!(a.layouts.len(), b.layouts.len());
            for (la, lb) in a.layouts.iter().zip(&b.layouts) {
                assert_eq!(la.placed_nodes(), lb.placed_nodes());
                let cells_a: Vec<(Position, CellUse)> =
                    la.grid().iter().map(|(p, &c)| (p, c)).collect();
                let cells_b: Vec<(Position, CellUse)> =
                    lb.grid().iter().map(|(p, &c)| (p, c)).collect();
                assert_eq!(cells_a, cells_b);
            }
        }
    }

    #[test]
    fn map_profile_reflects_the_work_done() {
        let g = generators::grid(5, 5);
        let r = map_graph(&g, LayerGeometry::new(7, 7), &opts());
        let p = r.profile;
        assert!(p.seed_scans >= 1, "at least the first seed placement scans");
        assert!(
            p.occupancy_peak >= g.node_count() as u64 / r.layouts.len() as u64,
            "peak occupancy covers the placed nodes: {p:?}"
        );
        assert_eq!(
            p.routing_cells,
            r.layouts
                .iter()
                .map(|l| l.routing_cells() as u64)
                .sum::<u64>()
        );
        assert_eq!(
            p.bfs_searches,
            p.scratch_grows + p.scratch_reuses,
            "every search either grew or reused the scratch"
        );
        if p.bfs_searches > 0 {
            assert!(
                p.bfs_expansions >= p.bfs_searches,
                "each search visits ≥ 1 cell"
            );
        }
    }

    #[test]
    fn grid_occupancy_equals_nodes_plus_routing() {
        let g = generators::star(12);
        let r = map_graph(&g, LayerGeometry::new(10, 10), &opts());
        for layout in &r.layouts {
            assert_eq!(
                layout.grid().occupied_cells(),
                layout.placed_count() + layout.routing_cells()
            );
        }
    }
}
