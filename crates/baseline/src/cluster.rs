//! Cluster- and physical-area model (paper §7.1, Table 1).

use oneq_hardware::ResourceKind;

/// Side length of one 2-D cluster slice for an `n`-qubit circuit: qubits
/// sit on a `k x k` grid (`k = ceil(sqrt(n))`) with one ancilla row/column
/// between neighbours, so the slice is `(2k - 1)` on a side.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Example
///
/// ```
/// // Paper Table 1: 16 qubits -> 7x7, 25 -> 9x9, 36 -> 11x11, 100 -> 19x19.
/// assert_eq!(oneq_baseline::cluster_side(16), 7);
/// assert_eq!(oneq_baseline::cluster_side(25), 9);
/// assert_eq!(oneq_baseline::cluster_side(36), 11);
/// assert_eq!(oneq_baseline::cluster_side(100), 19);
/// ```
pub fn cluster_side(n: usize) -> usize {
    assert!(n > 0, "need at least one qubit");
    let k = (n as f64).sqrt().ceil() as usize;
    2 * k - 1
}

/// Logical grid side (`k`) used for qubit placement and routing.
pub fn logical_side(n: usize) -> usize {
    assert!(n > 0, "need at least one qubit");
    (n as f64).sqrt().ceil() as usize
}

/// Side length of the RSG array needed to knit one cluster slice per
/// cycle: each cluster-state node has degree up to 6 in the 3-D cluster
/// (4 in-plane + 2 temporal), so it takes `chain_nodes(6)` resource states;
/// the paper adopts this count (ignoring routing constraints) as a lower
/// bound and rounds up to a square array.
///
/// # Example
///
/// ```
/// use oneq_hardware::ResourceKind;
/// // Paper Table 1 (3-qubit states): 7x7 -> 16x16, 9x9 -> 21x21,
/// // 11x11 -> 25x25, 19x19 -> 43x43.
/// assert_eq!(oneq_baseline::physical_side(16, ResourceKind::LINE3), 16);
/// assert_eq!(oneq_baseline::physical_side(25, ResourceKind::LINE3), 21);
/// assert_eq!(oneq_baseline::physical_side(36, ResourceKind::LINE3), 25);
/// assert_eq!(oneq_baseline::physical_side(100, ResourceKind::LINE3), 43);
/// ```
pub fn physical_side(n: usize, kind: ResourceKind) -> usize {
    let slice_nodes = cluster_side(n).pow(2);
    let per_node = kind.chain_nodes(6);
    ((slice_nodes * per_node) as f64).sqrt().ceil() as usize
}

/// Number of RSGs in the physical array.
pub fn physical_area(n: usize, kind: ResourceKind) -> usize {
    physical_side(n, kind).pow(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_cluster_areas() {
        for (n, side) in [(16, 7), (25, 9), (36, 11), (100, 19)] {
            assert_eq!(cluster_side(n), side, "n={n}");
        }
    }

    #[test]
    fn table1_physical_areas() {
        for (n, side) in [(16, 16), (25, 21), (36, 25), (100, 43)] {
            assert_eq!(physical_side(n, ResourceKind::LINE3), side, "n={n}");
        }
    }

    #[test]
    fn non_square_qubit_counts_round_up() {
        assert_eq!(logical_side(17), 5);
        assert_eq!(cluster_side(17), 9);
        assert_eq!(cluster_side(2), 3);
        assert_eq!(cluster_side(1), 1);
    }

    #[test]
    fn richer_resource_states_shrink_the_array() {
        let line3 = physical_area(16, ResourceKind::LINE3);
        let star4 = physical_area(16, ResourceKind::STAR4);
        assert!(star4 < line3);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_qubits_rejected() {
        cluster_side(0);
    }
}
