//! # oneq-baseline
//!
//! The cluster-state MBQC interpreter baseline (paper §2.2.2 and §7.1).
//!
//! The baseline executes a circuit on a 3-D cluster state: each clock
//! cycle the RSG array knits one 2-D *slice*; circuit qubits live at fixed
//! sites of the slice and gates are implemented by joining the standard
//! measurement patterns (5-qubit lines for rotations, the 15-qubit CNOT
//! block) along the time axis, with redundant qubits removed by
//! Z-measurements. Following the paper's optimized setup:
//!
//! * qubits are placed on a `k x k` logical grid (`k = ceil(sqrt(n))`),
//!   giving a *cluster area* of `(2k - 1)²` sites per slice,
//! * far-apart two-qubit gates are fixed by a SWAP-insertion router
//!   ([`router`]) standing in for Qiskit's transpiler,
//! * the *physical area* is the number of RSGs needed to synthesize one
//!   slice from the resource states — the lower bound the paper adopts
//!   ([`cluster`]),
//! * depth is the number of slices consumed by the joined patterns and
//!   every RSG's resource state participates in knitting each slice, so
//!   `#fusions = depth × physical_area` ([`interpreter`]) — this matches
//!   the paper's Table 2 numbers exactly (e.g. BV-16: 24 064 / 94 = 256).
//!
//! # Example
//!
//! ```
//! use oneq_baseline::evaluate;
//! use oneq_circuit::benchmarks;
//! use oneq_hardware::ResourceKind;
//!
//! let result = evaluate(&benchmarks::qft(16), ResourceKind::LINE3);
//! assert_eq!(result.cluster_side, 7);   // paper Table 1
//! assert_eq!(result.physical_side, 16); // paper Table 1
//! assert_eq!(result.fusions, result.depth * 256);
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod interpreter;
pub mod router;

pub use cluster::{cluster_side, physical_side};
pub use interpreter::{evaluate, BaselineResult, Footprints};
pub use router::{route_on_grid, RoutedCircuit};
