//! SWAP-insertion routing on the logical qubit grid.
//!
//! The baseline places circuit qubits on a `k x k` grid and requires
//! two-qubit gates to act on grid-adjacent qubits (the cluster-state CNOT
//! pattern joins neighbouring strips). This router stands in for the
//! Qiskit transpile step the paper uses (§7.1): an interaction-aware
//! initial placement followed by greedy SWAP insertion along shortest
//! paths.

use oneq_circuit::{Circuit, Gate, Qubit};
use oneq_hardware::{CellGrid, LayerGeometry, Position};
use std::collections::BTreeMap;

/// A routed circuit: every multi-qubit gate acts on grid neighbours.
#[derive(Debug, Clone)]
pub struct RoutedCircuit {
    /// The rewritten gate list (SWAPs inserted).
    pub circuit: Circuit,
    /// Number of SWAPs inserted.
    pub swap_count: usize,
    /// Final map from logical qubit to grid position.
    pub placement: Vec<Position>,
    /// Logical grid side.
    pub grid_side: usize,
}

/// Routes `circuit` on a `side x side` grid.
///
/// Initial placement is interaction-aware: qubits are laid out in
/// descending two-qubit-gate count, each next to its most frequent
/// partner when possible (this is what keeps the BV oracle's CNOT fan-in
/// cheap, mirroring a tuned Qiskit layout).
///
/// # Panics
///
/// Panics if the grid cannot hold all qubits.
pub fn route_on_grid(circuit: &Circuit, side: usize) -> RoutedCircuit {
    let n = circuit.n_qubits();
    assert!(side * side >= n, "grid too small for {n} qubits");

    let mut pos = initial_placement(circuit, side);
    // Occupancy on a dense grid: position -> logical qubit.
    let mut occupant: CellGrid<usize> = CellGrid::new(LayerGeometry::square(side));
    for (q, &p) in pos.iter().enumerate() {
        occupant.set(p, q);
    }

    let mut out = Circuit::new(n);
    let mut swaps = 0usize;

    for gate in circuit.gates() {
        let qs = gate.qubits();
        if qs.len() == 2 {
            let (a, b) = (qs[0].index(), qs[1].index());
            // Walk qubit a toward b one grid step at a time.
            while pos[a].manhattan(pos[b]) > 1 {
                let next = step_toward(pos[a], pos[b]);
                if let Some(&other) = occupant.get(next) {
                    out.push(Gate::Swap(Qubit::new(a), Qubit::new(other)))
                        .expect("swap operands valid");
                    swaps += 1;
                    occupant.set(pos[a], other);
                    occupant.set(next, a);
                    pos.swap(a, other);
                } else {
                    // Free cell: the qubit just moves (its strip bends).
                    occupant.remove(pos[a]);
                    occupant.set(next, a);
                    pos[a] = next;
                }
            }
            assert_eq!(
                pos[a].manhattan(pos[b]),
                1,
                "router invariant: operands adjacent before every 2q gate"
            );
        } else if qs.len() > 2 {
            panic!("route_on_grid expects circuits lowered to <= 2-qubit gates");
        }
        out.push(*gate).expect("gate already validated");
    }

    RoutedCircuit {
        circuit: out,
        swap_count: swaps,
        placement: pos,
        grid_side: side,
    }
}

/// One grid step from `from` toward `to` (rows first).
fn step_toward(from: Position, to: Position) -> Position {
    if from.row != to.row {
        Position::new(
            if from.row < to.row {
                from.row + 1
            } else {
                from.row - 1
            },
            from.col,
        )
    } else {
        Position::new(
            from.row,
            if from.col < to.col {
                from.col + 1
            } else {
                from.col - 1
            },
        )
    }
}

/// Interaction-aware initial placement.
fn initial_placement(circuit: &Circuit, side: usize) -> Vec<Position> {
    let n = circuit.n_qubits();
    // Interaction counts, keyed by the ordered qubit pair. A BTreeMap
    // iterates in sorted key order by construction, so placements are
    // deterministic without a separate sort pass.
    let mut weight: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    let mut degree = vec![0usize; n];
    for g in circuit.gates() {
        let qs = g.qubits();
        if qs.len() == 2 {
            let (a, b) = (
                qs[0].index().min(qs[1].index()),
                qs[0].index().max(qs[1].index()),
            );
            *weight.entry((a, b)).or_default() += 1;
            degree[a.min(b)] += 1;
            degree[a.max(b)] += 1;
        }
    }

    // Spiral order of grid cells from the center outward.
    let center = Position::new(side / 2, side / 2);
    let mut cells: Vec<Position> = (0..side)
        .flat_map(|r| (0..side).map(move |c| Position::new(r, c)))
        .collect();
    cells.sort_by_key(|p| (p.manhattan(center), p.row, p.col));

    // Qubits in descending interaction degree, then index.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&q| (std::cmp::Reverse(degree[q]), q));

    let mut pos: Vec<Option<Position>> = vec![None; n];
    let mut used = vec![false; cells.len()];

    for &q in &order {
        // Prefer a free cell adjacent to the already-placed partner with
        // the heaviest interaction.
        let mut best: Option<(usize, usize)> = None; // (weight, cell index)
        for (&(a, b), &w) in &weight {
            let partner = if a == q {
                b
            } else if b == q {
                a
            } else {
                continue;
            };
            if let Some(pp) = pos[partner] {
                for (ci, &cell) in cells.iter().enumerate() {
                    if !used[ci] && cell.manhattan(pp) == 1 {
                        if best.map_or(true, |(bw, _)| w > bw) {
                            best = Some((w, ci));
                        }
                        break;
                    }
                }
            }
        }
        let ci = match best {
            Some((_, ci)) => ci,
            None => used
                .iter()
                .position(|&u| !u)
                .expect("grid has room for every qubit"),
        };
        used[ci] = true;
        pos[q] = Some(cells[ci]);
    }
    pos.into_iter()
        .map(|p| p.expect("all qubits placed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oneq_circuit::benchmarks;

    // Adjacency at execution time is asserted inside route_on_grid itself
    // (the router panics if a 2-qubit gate is emitted on non-neighbours),
    // so a routing call returning at all certifies the invariant.

    #[test]
    fn adjacent_gates_need_no_swaps() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        let routed = route_on_grid(&c, 2);
        assert_eq!(routed.swap_count, 0);
    }

    #[test]
    fn single_qubit_circuits_are_untouched() {
        let mut c = Circuit::new(4);
        c.h(0).t(1).rz(2, 0.4);
        let routed = route_on_grid(&c, 2);
        assert_eq!(routed.swap_count, 0);
        assert_eq!(routed.circuit.gate_count(), 3);
    }

    #[test]
    fn far_apart_gates_get_swaps_or_moves() {
        // Force interaction between many pairs on a 3x3 grid.
        let mut c = Circuit::new(9);
        for i in 0..9 {
            for j in (i + 1)..9 {
                c.cz(i, j);
            }
        }
        let routed = route_on_grid(&c, 3);
        assert!(routed.swap_count + c.gate_count() == routed.circuit.gate_count());
    }

    #[test]
    fn bv_oracle_routes_cheaply() {
        // Interaction-aware placement puts the ancilla next to the secret
        // qubits, so the fan-in costs few SWAPs.
        let c = benchmarks::bv(&[true; 4]); // 5 qubits, 4 CNOTs to q4
        let routed = route_on_grid(&c, 3);
        assert!(
            routed.swap_count <= 4,
            "expected cheap fan-in, got {} swaps",
            routed.swap_count
        );
    }

    #[test]
    fn qft_routes_completely() {
        let c = oneq_circuit::decompose::to_jcz(&benchmarks::qft(9));
        let routed = route_on_grid(&c, 3);
        assert!(routed.circuit.gate_count() >= c.gate_count());
    }

    #[test]
    #[should_panic(expected = "grid too small")]
    fn too_small_grid_panics() {
        route_on_grid(&Circuit::new(10), 3);
    }

    #[test]
    fn routed_gate_count_grows_only_by_swaps() {
        let c = oneq_circuit::decompose::to_jcz(&benchmarks::qft(6));
        let routed = route_on_grid(&c, 3);
        assert_eq!(
            routed.circuit.gate_count(),
            c.gate_count() + routed.swap_count
        );
    }
}
