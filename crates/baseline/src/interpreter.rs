//! The basic MBQC interpreter cost model (paper §2.2.2, §7.1).
//!
//! Gates become measurement patterns joined along the cluster's time axis
//! (paper Fig. 4): a general rotation occupies a 5-qubit line (4 columns
//! of advance), the CNOT block spans 6 columns, a SWAP is three CNOTs.
//! Identity wires are padded with X-measurement pairs, and every qubit of
//! every slice is consumed — measured for computation or removed in the Z
//! basis — which is precisely the waste OneQ eliminates.
//!
//! Depth = slices consumed by the joined patterns (gates on disjoint
//! qubits share columns; the naive interpreter does *not* exploit
//! Clifford simultaneity). Fusions = depth × physical_area: every RSG
//! emits one resource state per cycle and each is fused into the slice
//! being knitted (this reproduces the paper's Table 2 relation exactly).

use crate::cluster;
use crate::router;
use oneq_circuit::{decompose, Circuit, Gate};
use oneq_hardware::ResourceKind;
use std::fmt;

/// Pattern footprints in cluster columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footprints {
    /// Columns consumed by a single-qubit J/rotation pattern (5-qubit
    /// line = 4 column advances).
    pub j_cols: usize,
    /// Columns consumed by the two-qubit CZ/CNOT pattern (15-qubit block).
    pub cz_cols: usize,
    /// Columns consumed by a SWAP (three CNOT patterns).
    pub swap_cols: usize,
}

impl Default for Footprints {
    fn default() -> Self {
        Footprints {
            j_cols: 4,
            cz_cols: 6,
            swap_cols: 18,
        }
    }
}

/// Baseline evaluation of one benchmark circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineResult {
    /// Circuit width.
    pub n_qubits: usize,
    /// Cluster slice side (paper Table 1 "cluster area" side).
    pub cluster_side: usize,
    /// RSG array side (paper Table 1 "physical area" side).
    pub physical_side: usize,
    /// SWAPs inserted by routing.
    pub swaps: usize,
    /// Physical depth: cluster slices consumed.
    pub depth: usize,
    /// Total fusions: `depth × physical_area`.
    pub fusions: usize,
}

impl BaselineResult {
    /// RSGs in the array.
    pub fn physical_area(&self) -> usize {
        self.physical_side * self.physical_side
    }

    /// Cluster sites per slice.
    pub fn cluster_area(&self) -> usize {
        self.cluster_side * self.cluster_side
    }
}

impl fmt::Display for BaselineResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "baseline: depth={}, fusions={}, cluster {sx}x{sx}, physical {px}x{px}",
            self.depth,
            self.fusions,
            sx = self.cluster_side,
            px = self.physical_side
        )
    }
}

/// Evaluates the baseline on `circuit` with default footprints.
pub fn evaluate(circuit: &Circuit, kind: ResourceKind) -> BaselineResult {
    evaluate_with(circuit, kind, Footprints::default())
}

/// Evaluates the baseline with explicit pattern footprints.
///
/// The circuit is lowered to `{J, CZ}`, routed on the logical grid, and
/// the joined patterns are scheduled into columns with a per-qubit
/// frontier (gates on disjoint qubits overlap in time; gates sharing a
/// qubit serialize).
pub fn evaluate_with(
    circuit: &Circuit,
    kind: ResourceKind,
    footprints: Footprints,
) -> BaselineResult {
    let n = circuit.n_qubits();
    let lowered = decompose::to_jcz(circuit);
    let side = cluster::logical_side(n);
    let routed = router::route_on_grid(&lowered, side);

    // Column scheduling with per-qubit frontiers.
    let mut frontier = vec![0usize; n];
    let mut depth = 0usize;
    for gate in routed.circuit.gates() {
        let cols = match gate {
            Gate::J(_, _) => footprints.j_cols,
            Gate::Cz(_, _) => footprints.cz_cols,
            Gate::Swap(_, _) => footprints.swap_cols,
            other => panic!("unexpected gate {other} after lowering"),
        };
        let qs = gate.qubits();
        let start = qs.iter().map(|q| frontier[q.index()]).max().unwrap_or(0);
        let end = start + cols;
        for q in qs {
            frontier[q.index()] = end;
        }
        depth = depth.max(end);
    }
    // Even an empty circuit consumes the input slice.
    let depth = depth.max(1);

    let physical_side = cluster::physical_side(n, kind);
    BaselineResult {
        n_qubits: n,
        cluster_side: cluster::cluster_side(n),
        physical_side,
        swaps: routed.swap_count,
        depth,
        fusions: depth * physical_side * physical_side,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oneq_circuit::benchmarks;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fusions_are_depth_times_area() {
        let r = evaluate(&benchmarks::qft(16), ResourceKind::LINE3);
        assert_eq!(r.fusions, r.depth * 256);
        assert_eq!(r.physical_area(), 256);
    }

    #[test]
    fn table1_dimensions_for_all_benchmarks() {
        let mut rng = StdRng::seed_from_u64(1);
        for (circuit, n, cl, ph) in [
            (benchmarks::qft(16), 16, 7, 16),
            (benchmarks::qft(25), 25, 9, 21),
            (benchmarks::rca(36), 36, 11, 25),
            (benchmarks::bv_random(99, &mut rng), 100, 19, 43),
        ] {
            let r = evaluate(&circuit, ResourceKind::LINE3);
            assert_eq!(r.n_qubits, n);
            assert_eq!(r.cluster_side, cl, "n={n}");
            assert_eq!(r.physical_side, ph, "n={n}");
        }
    }

    #[test]
    fn parallel_gates_share_columns() {
        let mut a = Circuit::new(4);
        a.h(0).h(1).h(2).h(3);
        let mut b = Circuit::new(4);
        b.h(0);
        let ra = evaluate(&a, ResourceKind::LINE3);
        let rb = evaluate(&b, ResourceKind::LINE3);
        assert_eq!(ra.depth, rb.depth, "disjoint H gates share columns");
    }

    #[test]
    fn sequential_gates_stack_columns() {
        let mut a = Circuit::new(1);
        a.t(0);
        let mut b = Circuit::new(1);
        b.t(0).t(0);
        let ra = evaluate(&a, ResourceKind::LINE3);
        let rb = evaluate(&b, ResourceKind::LINE3);
        assert!(rb.depth > ra.depth);
    }

    #[test]
    fn deeper_circuits_cost_more_fusions() {
        let shallow = evaluate(&benchmarks::qft(9), ResourceKind::LINE3);
        let deep = evaluate(&benchmarks::qft(16), ResourceKind::LINE3);
        assert!(deep.fusions > shallow.fusions);
    }

    #[test]
    fn empty_circuit_still_consumes_a_slice() {
        let r = evaluate(&Circuit::new(4), ResourceKind::LINE3);
        assert_eq!(r.depth, 1);
        assert!(r.fusions > 0);
    }

    #[test]
    fn custom_footprints_scale_depth() {
        let c = benchmarks::qft(9);
        let small = evaluate_with(
            &c,
            ResourceKind::LINE3,
            Footprints {
                j_cols: 2,
                cz_cols: 3,
                swap_cols: 9,
            },
        );
        let big = evaluate(&c, ResourceKind::LINE3);
        assert!(small.depth < big.depth);
    }

    #[test]
    fn display_reports_depth() {
        let r = evaluate(&benchmarks::bv(&[true, false]), ResourceKind::LINE3);
        assert!(format!("{r}").contains("depth="));
    }
}
