//! Integration tests for oneq-obs: histogram correctness against an
//! exact-sorted reference over adversarial value sets, registry concurrency,
//! and a golden pin of the Prometheus exposition output.

use oneq_obs::{bucket_index, bucket_upper, Histogram, HistogramSnapshot, Registry, NUM_BUCKETS};

/// Exact nearest-rank quantile over a sorted slice.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Adversarial value sets: bucket boundaries and their neighbours, powers of
/// two, constants, zeros, heavy tails, saturating values, and a
/// deterministic pseudo-random spread.
fn adversarial_sets() -> Vec<Vec<u64>> {
    let mut sets: Vec<Vec<u64>> = vec![
        vec![0],
        vec![0, 0, 0, 0],
        vec![7, 8, 9], // the linear/log-linear seam
        (0..64).collect(),
        (0..40).map(|e| 1u64 << e).collect(),
        (3..40)
            .flat_map(|e| {
                let p = 1u64 << e;
                [p - 1, p, p + 1]
            })
            .collect(),
        vec![1_000_000; 1000], // all-same: every quantile in one bucket
        // Heavy tail: many fast requests, a few catastrophic ones.
        (0..990)
            .map(|i| 10_000 + i)
            .chain([10_000_000_000, 90_000_000_000, u64::MAX])
            .collect(),
        vec![u64::MAX, u64::MAX - 1, 1u64 << 63], // all saturate
    ];
    // xorshift spread across six orders of magnitude.
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    let mut spread = Vec::with_capacity(4096);
    for _ in 0..4096 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        spread.push(x % 10_000_000_000);
    }
    sets.push(spread);
    sets
}

#[test]
fn quantiles_match_the_exact_sorted_reference_bucket_for_bucket() {
    for (set_idx, values) in adversarial_sets().into_iter().enumerate() {
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, values.len() as u64, "set {set_idx}");

        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let estimate = snap.quantile(q);
            // The estimate is exactly the upper bound of the bucket holding
            // the true nearest-rank observation: never below the truth, and
            // above it by at most one log-linear bucket width.
            assert_eq!(
                estimate,
                bucket_upper(bucket_index(exact)),
                "set {set_idx} q={q}: exact={exact}"
            );
            assert!(estimate >= exact.min(bucket_upper(bucket_index(exact))));
        }
    }
}

/// The documented error contract, checked directly: the quantile estimate
/// is never below the true nearest-rank value, and overshoots by at most
/// one log-linear bucket width — ≤ 12.5% relative (`1 / SUB_COUNT`), exact
/// below the linear/log-linear seam, clamped at the saturation point.
fn assert_error_contract(exact: u64, estimate: u64, context: &str) {
    let saturated = bucket_upper(NUM_BUCKETS - 1);
    if exact >= saturated {
        assert_eq!(estimate, saturated, "{context}: saturating estimate");
        return;
    }
    assert!(estimate >= exact, "{context}: estimate below truth");
    let over = estimate - exact;
    if exact < 8 {
        assert_eq!(over, 0, "{context}: unit buckets are exact");
    } else {
        // 12.5% of the true value, rounded up to absorb the inclusive
        // upper-bound convention at octave edges.
        assert!(
            u128::from(over) * 8 <= u128::from(exact) + 8,
            "{context}: exact={exact} estimate={estimate} over={over}"
        );
    }
}

#[test]
fn quantile_error_stays_within_the_documented_bound_across_magnitudes() {
    // Deterministic LCG (Numerical Recipes constants) spanning nine orders
    // of magnitude: scale each draw into a different decade per set.
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        state >> 16
    };
    for decade in 0..10u32 {
        let scale = 10u64.pow(decade);
        let values: Vec<u64> = (0..2000).map(|_| next() % (9 * scale) + scale).collect();
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let snap = hist.snapshot();
        let mut sorted = values;
        sorted.sort_unstable();
        for q in [0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&sorted, q);
            assert_error_contract(exact, snap.quantile(q), &format!("decade {decade} q={q}"));
        }
    }
}

#[test]
fn quantile_error_bound_survives_merging_and_saturation() {
    // Shards covering disjoint magnitudes, one of them fully saturating.
    let mut state = 777u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        state >> 16
    };
    let mut all: Vec<u64> = Vec::new();
    let mut merged = HistogramSnapshot::empty();
    for decade in [2u32, 5, 8] {
        let scale = 10u64.pow(decade);
        let shard = Histogram::new();
        for _ in 0..500 {
            let v = next() % (9 * scale) + scale;
            shard.record(v);
            all.push(v);
        }
        merged.merge(&shard.snapshot());
    }
    let saturating = Histogram::new();
    for v in [u64::MAX, u64::MAX / 2, 1u64 << 62] {
        saturating.record(v);
        all.push(v);
    }
    merged.merge(&saturating.snapshot());
    all.sort_unstable();
    for q in [0.01, 0.5, 0.9, 0.99, 0.9999, 1.0] {
        // Clamp the reference the way `record` clamps the observation:
        // values beyond the tracked range land in the final bucket.
        let exact = exact_quantile(&all, q);
        assert_error_contract(exact, merged.quantile(q), &format!("merged q={q}"));
    }
}

#[test]
fn merged_shards_equal_one_histogram_over_the_union() {
    for values in adversarial_sets() {
        let whole = Histogram::new();
        let shards: Vec<Histogram> = (0..4).map(|_| Histogram::new()).collect();
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            shards[i % shards.len()].record(v);
        }
        let mut merged = HistogramSnapshot::empty();
        for shard in &shards {
            merged.merge(&shard.snapshot());
        }
        let reference = whole.snapshot();
        assert_eq!(merged.buckets, reference.buckets);
        assert_eq!(merged.count, reference.count);
        assert_eq!(merged.sum_ns, reference.sum_ns);
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(merged.quantile(q), reference.quantile(q));
        }
    }
}

#[test]
fn registry_handles_record_concurrently_without_losing_updates() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let registry = Registry::new();
    let counter = registry.counter("conc_total", "c", &[]);
    let hist = registry.histogram("conc_seconds", "h", &[]);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            // Re-registering from each thread must resolve to the same series.
            let counter = registry.counter("conc_total", "c", &[]);
            let hist = registry.histogram("conc_seconds", "h", &[]);
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    hist.record((t as u64 + 1) * 1000 + i);
                }
            });
        }
    });
    assert_eq!(counter.get(), (THREADS as u64) * PER_THREAD);
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("conc_total", &[]),
        (THREADS as u64) * PER_THREAD
    );
    let h = snap
        .histogram("conc_seconds", &[])
        .expect("histogram present");
    assert_eq!(h.count, (THREADS as u64) * PER_THREAD);
    assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
    assert_eq!(hist.count(), h.count);
}

#[test]
fn golden_exposition_output_for_counters_and_gauges() {
    let registry = Registry::new();
    registry
        .counter(
            "oneqd_demo_requests_total",
            "Requests by route.",
            &[("route", "compile")],
        )
        .add(2);
    registry
        .counter(
            "oneqd_demo_requests_total",
            "Requests by route.",
            &[("route", "stats")],
        )
        .add(5);
    registry
        .gauge("oneqd_demo_queue_depth", "Jobs waiting for a worker.", &[])
        .set(4);
    let text = registry.snapshot().render_prometheus();
    assert_eq!(
        text,
        "# HELP oneqd_demo_requests_total Requests by route.\n\
         # TYPE oneqd_demo_requests_total counter\n\
         oneqd_demo_requests_total{route=\"compile\"} 2\n\
         oneqd_demo_requests_total{route=\"stats\"} 5\n\
         # HELP oneqd_demo_queue_depth Jobs waiting for a worker.\n\
         # TYPE oneqd_demo_queue_depth gauge\n\
         oneqd_demo_queue_depth 4\n"
    );
}

#[test]
fn histogram_exposition_ladder_is_pinned() {
    let registry = Registry::new();
    let h = registry.histogram("lat_seconds", "Latency.", &[]);
    h.record(5_000); // inside the first exposed boundary (4607 ns < 5000)
    h.record(1_000_000_000); // 1 s, inside the ladder
    let text = registry.snapshot().render_prometheus();
    let les: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("lat_seconds_bucket{le=\""))
        .map(|l| {
            let start = l.find("le=\"").unwrap() + 4;
            &l[start..l[start..].find('"').unwrap() + start]
        })
        .collect();
    // 92 finite boundaries plus +Inf, first and last pinned exactly.
    assert_eq!(les.len(), 93, "ladder size is part of the format");
    assert_eq!(les[0], "0.000004607");
    assert_eq!(les[91], "32.212254719");
    assert_eq!(les[92], "+Inf");
    // Every finite boundary is an exact internal bucket upper bound, and the
    // ladder is strictly increasing.
    let mut last_ns = 0u64;
    for le in &les[..92] {
        let (secs, frac) = le.split_once('.').expect("decimal le");
        let ns: u64 = secs.parse::<u64>().unwrap() * 1_000_000_000 + frac.parse::<u64>().unwrap();
        assert_eq!(frac.len(), 9, "nanosecond precision: {le}");
        assert_eq!(
            bucket_upper(bucket_index(ns)),
            ns,
            "le {le} is a bucket edge"
        );
        assert!(ns > last_ns, "ladder increases: {le}");
        last_ns = ns;
    }
    assert!(text.contains("lat_seconds_sum 1.000005000\n"));
    assert!(text.contains("lat_seconds_count 2\n"));
}
