//! The metrics registry: named counter/gauge/histogram families with label
//! sets, snapshotted as plain data and rendered to Prometheus text format.
//!
//! Registration takes a lock; recording never does — handles returned by
//! [`Registry::counter`] / [`Registry::gauge`] / [`Registry::histogram`] are
//! cheap clones around shared atomics. Registration is idempotent: asking
//! for an existing `(name, labels)` pair returns a handle to the same
//! underlying series, so independent subsystems can share a metric without
//! coordinating.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{bucket_upper, Exemplar, Histogram, HistogramSnapshot};

/// A monotone counter handle (relaxed atomic increments).
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    // ORDERING: Relaxed throughout — each counter cell is an independent
    // monotonic statistic; no reader derives cross-metric invariants from
    // load order, so no acquire/release pairing is needed.
    /// Increment by one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Overwrite the value.
    ///
    /// Only for mirroring a monotone counter that is maintained elsewhere
    /// (e.g. a cache shard's hit count) into the registry at snapshot time;
    /// live instrumentation should use [`Counter::inc`]/[`Counter::add`].
    pub fn set(&self, n: u64) {
        self.value.store(n, Ordering::Relaxed);
    }
}

/// A gauge handle: a value that can move in both directions.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicU64>,
}

impl Gauge {
    // ORDERING: Relaxed throughout — gauges are point-in-time readings;
    // `set_max` relies only on fetch_max's atomicity, not on ordering
    // against other memory.
    /// Set the gauge.
    pub fn set(&self, n: u64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// Raise the gauge to `n` if `n` is higher — a lock-free high-water
    /// mark for peak-style gauges fed from many threads.
    pub fn set_max(&self, n: u64) {
        self.value.fetch_max(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Metric kind, fixed per family at first registration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Monotone counter.
    Counter,
    /// Bidirectional gauge.
    Gauge,
    /// Log-linear latency histogram (nanosecond observations, exposed in
    /// seconds).
    Histogram,
}

impl Kind {
    fn exposition_name(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Series {
    labels: Vec<(String, String)>,
    metric: Metric,
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: Kind,
    series: Vec<Series>,
}

/// The metrics registry. One per daemon; shared via `Arc`.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register (or fetch) a counter series.
    ///
    /// # Panics
    /// Panics if `name` was previously registered with a different kind.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, labels, Kind::Counter, || {
            Metric::Counter(Counter::default())
        }) {
            Metric::Counter(c) => c,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Register (or fetch) a gauge series.
    ///
    /// # Panics
    /// Panics if `name` was previously registered with a different kind.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, labels, Kind::Gauge, || {
            Metric::Gauge(Gauge::default())
        }) {
            Metric::Gauge(g) => g,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Register (or fetch) a histogram series.
    ///
    /// # Panics
    /// Panics if `name` was previously registered with a different kind.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.register(name, help, labels, Kind::Histogram, || {
            Metric::Histogram(Histogram::new())
        }) {
            Metric::Histogram(h) => h,
            _ => unreachable!("kind checked in register"),
        }
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: Kind,
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let mut families = self.families.lock().expect("registry poisoned");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert!(
                    f.kind == kind,
                    "metric {name} registered as {:?} and {:?}",
                    f.kind,
                    kind
                );
                f
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(series) = family.series.iter().find(|s| label_eq(&s.labels, labels)) {
            return series.metric.clone();
        }
        let metric = make();
        family.series.push(Series {
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            metric: metric.clone(),
        });
        metric
    }

    /// Capture every registered series as plain owned data.
    ///
    /// Both `/v1/metrics` and `/v1/stats` render from one of these, which is
    /// what keeps the two surfaces from ever disagreeing about a value.
    pub fn snapshot(&self) -> Snapshot {
        let families = self.families.lock().expect("registry poisoned");
        Snapshot {
            families: families
                .iter()
                .map(|f| SnapFamily {
                    name: f.name.clone(),
                    help: f.help.clone(),
                    kind: f.kind,
                    series: f
                        .series
                        .iter()
                        .map(|s| SnapSeries {
                            labels: s.labels.clone(),
                            value: match &s.metric {
                                Metric::Counter(c) => SnapValue::Counter(c.get()),
                                Metric::Gauge(g) => SnapValue::Gauge(g.get()),
                                Metric::Histogram(h) => SnapValue::Histogram(h.snapshot()),
                            },
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

fn label_eq(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    have.len() == want.len()
        && have
            .iter()
            .zip(want.iter())
            .all(|((hk, hv), (wk, wv))| hk == wk && hv == wv)
}

/// One captured value in a [`Snapshot`].
#[derive(Clone, Debug)]
pub enum SnapValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Full histogram state.
    Histogram(HistogramSnapshot),
}

/// One captured series: a label set and its value.
#[derive(Clone, Debug)]
pub struct SnapSeries {
    /// Label pairs in registration order.
    pub labels: Vec<(String, String)>,
    /// The captured value.
    pub value: SnapValue,
}

/// One captured family: every series sharing a metric name.
#[derive(Clone, Debug)]
pub struct SnapFamily {
    /// Metric family name (e.g. `oneqd_requests_total`).
    pub name: String,
    /// Help text for the `# HELP` line.
    pub help: String,
    /// Family kind.
    pub kind: Kind,
    /// Captured series.
    pub series: Vec<SnapSeries>,
}

/// A point-in-time copy of every registered metric.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Captured families in registration order.
    pub families: Vec<SnapFamily>,
}

impl Snapshot {
    fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SnapValue> {
        self.families
            .iter()
            .find(|f| f.name == name)?
            .series
            .iter()
            .find(|s| label_eq(&s.labels, labels))
            .map(|s| &s.value)
    }

    /// Counter value for `(name, labels)`, or 0 when absent.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.find(name, labels) {
            Some(SnapValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge value for `(name, labels)`, or 0 when absent.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.find(name, labels) {
            Some(SnapValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// Histogram snapshot for `(name, labels)` when present.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        match self.find(name, labels) {
            Some(SnapValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Render the snapshot in Prometheus text exposition format.
    ///
    /// Counters and gauges emit one sample per series; histograms emit
    /// cumulative `_bucket{le="..."}` samples over a fixed ladder of
    /// log-linear bucket boundaries (4.6 µs … 32 s, ≤ 25% spacing) plus
    /// `+Inf`, `_sum` (seconds), and `_count`. Observations are recorded in
    /// nanoseconds and exposed in seconds, formatted as exact decimals.
    ///
    /// ```
    /// use oneq_obs::Registry;
    ///
    /// let registry = Registry::new();
    /// registry.counter("demo_requests_total", "Requests served.", &[]).add(3);
    /// registry
    ///     .counter("demo_outcomes_total", "Outcomes by tier.", &[("tier", "memory")])
    ///     .inc();
    /// registry.gauge("demo_open_connections", "Open sockets.", &[]).set(7);
    /// registry
    ///     .histogram("demo_latency_seconds", "Request latency.", &[])
    ///     .record(1_000_000); // 1 ms, recorded in nanoseconds
    ///
    /// let text = registry.snapshot().render_prometheus();
    /// assert!(text.contains("# TYPE demo_requests_total counter\n"));
    /// assert!(text.contains("demo_requests_total 3\n"));
    /// assert!(text.contains("demo_outcomes_total{tier=\"memory\"} 1\n"));
    /// assert!(text.contains("# TYPE demo_open_connections gauge\n"));
    /// assert!(text.contains("demo_open_connections 7\n"));
    /// assert!(text.contains("# TYPE demo_latency_seconds histogram\n"));
    /// assert!(text.contains("demo_latency_seconds_bucket{le=\"+Inf\"} 1\n"));
    /// assert!(text.contains("demo_latency_seconds_sum 0.001000000\n"));
    /// assert!(text.contains("demo_latency_seconds_count 1\n"));
    /// ```
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for family in &self.families {
            out.push_str("# HELP ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(&family.help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(family.kind.exposition_name());
            out.push('\n');
            for series in &family.series {
                match &series.value {
                    SnapValue::Counter(v) | SnapValue::Gauge(v) => {
                        out.push_str(&family.name);
                        push_labels(&mut out, &series.labels, None);
                        out.push(' ');
                        out.push_str(&v.to_string());
                        out.push('\n');
                    }
                    SnapValue::Histogram(h) => render_histogram(&mut out, &family.name, series, h),
                }
            }
        }
        out
    }
}

/// First internal bucket index exposed as an explicit `le` boundary
/// (`bucket_upper(EXPO_FIRST)` = 4607 ns ≈ 4.6 µs).
const EXPO_FIRST: usize = 80;
/// Last internal bucket index exposed (≈ 32 s); everything above folds into
/// `+Inf`.
const EXPO_LAST: usize = 263;
/// Stride over internal buckets: every second boundary, ≤ 25% spacing.
const EXPO_STRIDE: usize = 2;

fn render_histogram(out: &mut String, name: &str, series: &SnapSeries, h: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    let mut next = 0usize;
    let mut window_lo = 0usize;
    for index in (EXPO_FIRST..=EXPO_LAST).step_by(EXPO_STRIDE) {
        while next < h.buckets.len() && next <= index {
            cumulative += h.buckets[next];
            next += 1;
        }
        out.push_str(name);
        out.push_str("_bucket");
        push_labels(out, &series.labels, Some(&fmt_seconds(bucket_upper(index))));
        out.push(' ');
        out.push_str(&cumulative.to_string());
        // Each exposed boundary annotates the newest exemplar from the
        // internal buckets it newly covers, so an exemplar appears on
        // exactly one ladder line — the first whose `le` admits it.
        push_exemplar(out, h.exemplar_in(window_lo, index));
        out.push('\n');
        window_lo = index + 1;
    }
    out.push_str(name);
    out.push_str("_bucket");
    push_labels(out, &series.labels, Some("+Inf"));
    out.push(' ');
    out.push_str(&h.count.to_string());
    push_exemplar(out, h.exemplar_in(window_lo, usize::MAX));
    out.push('\n');
    out.push_str(name);
    out.push_str("_sum");
    push_labels(out, &series.labels, None);
    out.push(' ');
    out.push_str(&fmt_seconds(h.sum_ns));
    out.push('\n');
    out.push_str(name);
    out.push_str("_count");
    push_labels(out, &series.labels, None);
    out.push(' ');
    out.push_str(&h.count.to_string());
    out.push('\n');
}

/// Exact decimal rendering of a nanosecond quantity as seconds.
fn fmt_seconds(ns: u64) -> String {
    format!("{}.{:09}", ns / 1_000_000_000, ns % 1_000_000_000)
}

/// OpenMetrics-style exemplar suffix on a bucket sample line:
/// ` # {request_id="..."} <value_seconds> <unix_seconds>`. Scrapers that
/// predate exemplars treat everything from `#` on as a comment, so the
/// base sample stays parseable either way.
fn push_exemplar(out: &mut String, exemplar: Option<&Exemplar>) {
    let Some(e) = exemplar else { return };
    out.push_str(" # {request_id=\"");
    push_escaped(out, &e.request_id);
    out.push_str("\"} ");
    out.push_str(&fmt_seconds(e.value_ns));
    out.push(' ');
    out.push_str(&format!("{}.{:03}", e.unix_ms / 1000, e.unix_ms % 1000));
}

fn push_labels(out: &mut String, labels: &[(String, String)], le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        push_escaped(out, v);
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        out.push_str(le);
        out.push('"');
    }
    out.push('}');
}

fn push_escaped(out: &mut String, value: &str) {
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_kind_checked() {
        let registry = Registry::new();
        let a = registry.counter("x_total", "x", &[("t", "a")]);
        let b = registry.counter("x_total", "x", &[("t", "a")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "both handles share one series");
        let other = registry.counter("x_total", "x", &[("t", "b")]);
        assert_eq!(other.get(), 0, "different labels, different series");
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_conflict_panics() {
        let registry = Registry::new();
        registry.counter("y_total", "y", &[]);
        registry.gauge("y_total", "y", &[]);
    }

    #[test]
    fn seconds_are_rendered_as_exact_decimals() {
        assert_eq!(fmt_seconds(0), "0.000000000");
        assert_eq!(fmt_seconds(1), "0.000000001");
        assert_eq!(fmt_seconds(1_000_000_000), "1.000000000");
        assert_eq!(fmt_seconds(12_345_678_901), "12.345678901");
    }

    #[test]
    fn histogram_exposition_is_cumulative_and_consistent() {
        let registry = Registry::new();
        let h = registry.histogram("z_seconds", "z", &[]);
        // One observation below the first boundary, one inside the ladder,
        // one beyond the last boundary.
        h.record(10);
        h.record(1_000_000);
        h.record(60_000_000_000);
        let text = registry.snapshot().render_prometheus();
        let inf = text
            .lines()
            .find(|l| l.starts_with("z_seconds_bucket{le=\"+Inf\"}"))
            .expect("+Inf bucket");
        assert!(inf.ends_with(" 3"));
        assert!(text.contains("z_seconds_count 3\n"));
        // Cumulative counts never decrease along the ladder.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("z_seconds_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "non-monotonic bucket line: {line}");
            last = v;
        }
    }

    #[test]
    fn exemplars_annotate_exactly_one_ladder_line_each() {
        let registry = Registry::new();
        let h = registry.histogram("ex_seconds", "ex", &[("route", "compile")]);
        h.record_with_exemplar(1_000_000, "req-mid"); // inside the ladder
        h.record_with_exemplar(60_000_000_000, "req-inf"); // beyond it
        h.record(2_000_000_000); // plain record: no annotation
        let text = registry.snapshot().render_prometheus();
        let annotated: Vec<&str> = text
            .lines()
            .filter(|l| l.contains(" # {request_id="))
            .collect();
        assert_eq!(annotated.len(), 2, "one line per exemplar:\n{text}");
        let mid = annotated
            .iter()
            .find(|l| l.contains("req-mid"))
            .expect("mid exemplar");
        // Suffix shape: sample, then `# {labels} value timestamp`.
        let (sample, suffix) = mid.split_once(" # ").unwrap();
        assert!(sample.starts_with("ex_seconds_bucket{route=\"compile\",le=\""));
        let mut parts = suffix.split(' ');
        assert_eq!(parts.next(), Some("{request_id=\"req-mid\"}"));
        assert_eq!(parts.next(), Some("0.001000000"));
        let ts = parts.next().expect("timestamp present");
        assert!(ts.contains('.'), "unix seconds with decimals: {ts}");
        assert_eq!(parts.next(), None);
        // The exemplar lands on the first boundary whose `le` admits it.
        let le_start = sample.find("le=\"").unwrap() + 4;
        let le = &sample[le_start..sample[le_start..].find('"').unwrap() + le_start];
        let (secs, frac) = le.split_once('.').unwrap();
        let le_ns = secs.parse::<u64>().unwrap() * 1_000_000_000 + frac.parse::<u64>().unwrap();
        assert!(le_ns >= 1_000_000, "boundary admits the value");
        // The out-of-ladder exemplar rides the +Inf line.
        assert!(annotated
            .iter()
            .any(|l| l.contains("le=\"+Inf\"") && l.contains("req-inf")));
    }
}
