//! # oneq-obs — observability primitives for the OneQ service stack
//!
//! Everything the daemon needs to explain its own latency, built on std
//! alone:
//!
//! - [`Registry`] — named counter/gauge/histogram families with label sets.
//!   Registration locks; recording is a relaxed atomic op. A [`Snapshot`]
//!   is plain owned data that renders to Prometheus text exposition format
//!   ([`Snapshot::render_prometheus`]) and answers point lookups, so
//!   `/v1/metrics` and `/v1/stats` are two views of one capture.
//! - [`Histogram`] — log-linear HDR-style latency histogram over nanosecond
//!   observations (≤ 12.5% relative bucket width), with mergeable
//!   [`HistogramSnapshot`]s and nearest-rank quantiles.
//! - [`TraceRecord`] / [`TraceBuffer`] — per-request span trees in a bounded
//!   ring, encoded one JSON object per line for the `--trace-log` sink.
//! - [`RequestIds`] / [`valid_request_id`] — `X-Oneqd-Request-Id` minting
//!   and inbound-id hygiene.
//!
//! The crate knows nothing about HTTP or the compiler pipeline; the service
//! decides what to measure, this crate decides how measurements are stored,
//! merged, and rendered.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod registry;
mod trace;

pub use hist::{
    bucket_index, bucket_upper, Exemplar, Histogram, HistogramSnapshot, NUM_BUCKETS, SUB_COUNT,
};
pub use registry::{Counter, Gauge, Kind, Registry, SnapFamily, SnapSeries, SnapValue, Snapshot};
pub use trace::{valid_request_id, RequestIds, Span, TraceBuffer, TraceRecord};

/// Saturating conversion of a [`std::time::Duration`] to whole nanoseconds.
pub fn duration_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}
