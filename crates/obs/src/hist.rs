//! Log-linear latency histograms with lock-free recording.
//!
//! The bucket layout is HDR-style log-linear over `u64` nanoseconds: each
//! power-of-two "octave" is split into [`SUB_COUNT`] equal-width linear
//! sub-buckets, so the relative width of any bucket is at most
//! `1 / SUB_COUNT` (12.5%). Recording is a single relaxed `fetch_add` on an
//! atomic bucket counter — no locks, no allocation — so it is safe to call
//! from the event loop and from every worker thread.
//!
//! [`HistogramSnapshot`]s are plain owned data: they can be merged
//! (bucket-wise addition) across shards or across scrape intervals, and they
//! answer nearest-rank quantile queries by walking the bucket array.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

/// log2 of the number of linear sub-buckets per octave.
pub const SUB_BITS: u32 = 3;
/// Linear sub-buckets per power-of-two octave (8 — ≤ 12.5% relative error).
pub const SUB_COUNT: usize = 1 << SUB_BITS;
/// Largest tracked exponent: values at or above 2^(MAX_EXP+1) ns saturate
/// into the final bucket (~549 s — far beyond any request the daemon serves).
const MAX_EXP: u32 = 38;
/// Total bucket count implied by `MAX_EXP` and `SUB_BITS`.
pub const NUM_BUCKETS: usize = ((MAX_EXP - SUB_BITS + 1) as usize + 1) * SUB_COUNT;

/// Largest value that maps to a bucket without saturating.
const MAX_TRACKED: u64 = (1u64 << (MAX_EXP + 1)) - 1;

/// Map a nanosecond value to its bucket index.
///
/// Values `0..SUB_COUNT` get unit-width buckets; beyond that each octave
/// `[2^e, 2^(e+1))` is split into `SUB_COUNT` equal slices.
pub fn bucket_index(value: u64) -> usize {
    let v = value.min(MAX_TRACKED);
    if v < SUB_COUNT as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    let shift = exp - SUB_BITS;
    let sub = ((v >> shift) as usize) & (SUB_COUNT - 1);
    ((exp - SUB_BITS + 1) as usize) * SUB_COUNT + sub
}

/// Inclusive upper bound (in nanoseconds) of bucket `index`.
pub fn bucket_upper(index: usize) -> u64 {
    debug_assert!(index < NUM_BUCKETS);
    if index < SUB_COUNT {
        return index as u64;
    }
    let decade = (index / SUB_COUNT) as u32;
    let sub = (index % SUB_COUNT) as u64;
    let shift = decade - 1;
    let lower = (SUB_COUNT as u64 + sub) << shift;
    lower + (1u64 << shift) - 1
}

/// The request id and timestamp of one bucket's most recent observation —
/// the OpenMetrics exemplar concept: a fat-tail bucket links directly to a
/// fetchable trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Exemplar {
    /// Request id of the observation (`X-Oneqd-Request-Id` value).
    pub request_id: String,
    /// The observed value in nanoseconds (pre-clamp bucket member).
    pub value_ns: u64,
    /// Wall-clock milliseconds since the Unix epoch when it was recorded.
    pub unix_ms: u64,
}

/// Milliseconds since the Unix epoch, saturating at 0 for pre-epoch clocks.
fn now_unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Shared recording core: one atomic per bucket plus running sum and count.
/// Exemplars live behind a separate mutex touched only by
/// [`Histogram::record_with_exemplar`] — the plain `record` path stays
/// lock-free, and the exemplar lock is held for one sparse-vec binary
/// search (≤ one slot per non-empty bucket).
#[derive(Debug)]
struct Core {
    buckets: Vec<AtomicU64>,
    sum_ns: AtomicU64,
    count: AtomicU64,
    /// Sparse `(bucket index, exemplar)` pairs, sorted by bucket index.
    exemplars: Mutex<Vec<(u32, Exemplar)>>,
}

/// A lock-free log-linear latency histogram handle.
///
/// Cloning is cheap (an `Arc` bump) and every clone records into the same
/// bucket array, so a handle can be given to each worker thread.
#[derive(Clone, Debug)]
pub struct Histogram {
    core: Arc<Core>,
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        let buckets = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            core: Arc::new(Core {
                buckets,
                sum_ns: AtomicU64::new(0),
                count: AtomicU64::new(0),
                exemplars: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Record one observation in nanoseconds.
    ///
    /// Values beyond the tracked range (~549 s) are clamped before both
    /// bucketing and summing, so the running sum cannot wrap on garbage
    /// input.
    pub fn record(&self, ns: u64) {
        let v = ns.min(MAX_TRACKED);
        // ORDERING: Relaxed — bucket/sum/count are independent monotonic
        // counters; readers take point-in-time snapshots and tolerate the
        // three updates landing non-atomically relative to each other.
        self.core.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.core.sum_ns.fetch_add(v, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an elapsed [`std::time::Duration`].
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// [`Histogram::record`] plus an exemplar: the target bucket remembers
    /// this observation's request id and wall-clock time, replacing any
    /// earlier exemplar for the same bucket (most recent wins). The bucket
    /// counter update stays lock-free; only the exemplar slot takes the
    /// bounded mutex.
    pub fn record_with_exemplar(&self, ns: u64, request_id: &str) {
        self.record(ns);
        let index = bucket_index(ns) as u32;
        let exemplar = Exemplar {
            request_id: request_id.to_string(),
            value_ns: ns.min(MAX_TRACKED),
            unix_ms: now_unix_ms(),
        };
        let mut slots = self.core.exemplars.lock().expect("exemplar lock poisoned");
        match slots.binary_search_by_key(&index, |(i, _)| *i) {
            Ok(at) => slots[at].1 = exemplar,
            Err(at) => slots.insert(at, (index, exemplar)),
        }
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        // ORDERING: Relaxed — statistics read; no dependent data is gated
        // on this load.
        self.core.count.load(Ordering::Relaxed)
    }

    /// Take a consistent-enough snapshot of the bucket array.
    ///
    /// Individual bucket loads are relaxed, so a snapshot taken concurrently
    /// with recording may be mid-update by a handful of observations; counts
    /// never go backwards between snapshots.
    pub fn snapshot(&self) -> HistogramSnapshot {
        // ORDERING: Relaxed — snapshot loads; per the doc comment above, a
        // concurrent `record` may be partially visible, which callers accept.
        let buckets: Vec<u64> = self
            .core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let exemplars = self
            .core
            .exemplars
            .lock()
            .expect("exemplar lock poisoned")
            .iter()
            .map(|(i, e)| (*i as usize, e.clone()))
            .collect();
        HistogramSnapshot {
            count: buckets.iter().sum(),
            sum_ns: self.core.sum_ns.load(Ordering::Relaxed),
            buckets,
            exemplars,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// An owned, mergeable copy of a histogram's state.
#[derive(Clone, Debug, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_upper`] for bounds).
    pub buckets: Vec<u64>,
    /// Total observations across all buckets.
    pub count: u64,
    /// Sum of all recorded values in nanoseconds.
    pub sum_ns: u64,
    /// Sparse `(bucket index, exemplar)` pairs, sorted by bucket index —
    /// one slot per bucket that ever saw an exemplar-tagged observation.
    pub exemplars: Vec<(usize, Exemplar)>,
}

impl HistogramSnapshot {
    /// An empty snapshot (zero observations).
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum_ns: 0,
            exemplars: Vec::new(),
        }
    }

    /// Merge another snapshot into this one (bucket-wise addition).
    /// Exemplars merge per bucket with the newer timestamp winning.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += *src;
        }
        self.count += other.count;
        // Sums can legitimately saturate when extreme (clamped) observations
        // are merged; counts and buckets stay exact.
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        for (index, theirs) in &other.exemplars {
            match self.exemplars.binary_search_by_key(index, |(i, _)| *i) {
                Ok(at) => {
                    if theirs.unix_ms >= self.exemplars[at].1.unix_ms {
                        self.exemplars[at].1 = theirs.clone();
                    }
                }
                Err(at) => self.exemplars.insert(at, (*index, theirs.clone())),
            }
        }
    }

    /// The newest exemplar whose bucket index lies in `lo..=hi` — the shape
    /// the exposition renderer needs: one candidate per cumulative-bucket
    /// window. Returns `None` when no bucket in the window has one.
    pub fn exemplar_in(&self, lo: usize, hi: usize) -> Option<&Exemplar> {
        self.exemplars
            .iter()
            .filter(|(i, _)| *i >= lo && *i <= hi)
            .max_by_key(|(_, e)| e.unix_ms)
            .map(|(_, e)| e)
    }

    /// Nearest-rank quantile in nanoseconds.
    ///
    /// Returns the inclusive upper bound of the bucket holding the
    /// `ceil(q * count)`-th smallest observation — i.e. the estimate is
    /// never below the true quantile and overshoots by at most one bucket
    /// width (≤ 12.5% relative). Returns 0 for an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let mut rank = (q * self.count as f64).ceil() as u64;
        rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(self.buckets.len().saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_buckets_below_sub_count() {
        for v in 0..SUB_COUNT as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_are_contiguous_and_cover_the_domain() {
        // Every bucket's upper bound + 1 is the next bucket's smallest member.
        for i in 0..NUM_BUCKETS - 1 {
            let upper = bucket_upper(i);
            assert_eq!(bucket_index(upper), i, "upper of bucket {i} maps back");
            assert_eq!(bucket_index(upper + 1), i + 1, "bucket {i} is contiguous");
        }
        // Saturation: anything huge lands in the final bucket.
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(MAX_TRACKED), NUM_BUCKETS - 1);
    }

    #[test]
    fn exemplars_track_the_most_recent_observation_per_bucket() {
        let hist = Histogram::new();
        hist.record_with_exemplar(100, "first");
        hist.record_with_exemplar(100, "second"); // same bucket: replaces
        hist.record_with_exemplar(1_000_000, "tail");
        hist.record(5); // plain records leave no exemplar
        let snap = hist.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.exemplars.len(), 2);
        let at_100 = snap
            .exemplar_in(bucket_index(100), bucket_index(100))
            .expect("bucket has an exemplar");
        assert_eq!(at_100.request_id, "second");
        assert_eq!(at_100.value_ns, 100);
        let tail = snap
            .exemplar_in(bucket_index(1_000_000), NUM_BUCKETS - 1)
            .expect("tail window");
        assert_eq!(tail.request_id, "tail");
        assert!(snap.exemplar_in(bucket_index(5), bucket_index(5)).is_none());
        // Saturating values clamp like `record` does.
        hist.record_with_exemplar(u64::MAX, "huge");
        let snap = hist.snapshot();
        let last = snap
            .exemplar_in(NUM_BUCKETS - 1, NUM_BUCKETS - 1)
            .expect("saturated bucket");
        assert_eq!(last.request_id, "huge");
        assert_eq!(last.value_ns, MAX_TRACKED);
    }

    #[test]
    fn exemplar_merge_keeps_the_newer_timestamp() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record_with_exemplar(100, "older");
        b.record_with_exemplar(100, "newer");
        b.record_with_exemplar(2_000, "only-b");
        let mut older = a.snapshot();
        let mut newer = b.snapshot();
        // Force a deterministic ordering: wall clocks may tie at ms grain.
        older.exemplars[0].1.unix_ms = 1_000;
        newer.exemplars[0].1.unix_ms = 2_000;
        let mut merged = older.clone();
        merged.merge(&newer);
        let won = merged
            .exemplar_in(bucket_index(100), bucket_index(100))
            .expect("merged exemplar");
        assert_eq!(won.request_id, "newer");
        assert_eq!(
            merged
                .exemplar_in(bucket_index(2_000), bucket_index(2_000))
                .expect("b-only exemplar carries over")
                .request_id,
            "only-b"
        );
        // Merging the other way: the newer side still wins.
        let mut reversed = newer;
        reversed.merge(&older);
        assert_eq!(
            reversed
                .exemplar_in(bucket_index(100), bucket_index(100))
                .expect("merged exemplar")
                .request_id,
            "newer"
        );
    }

    #[test]
    fn relative_bucket_width_is_bounded() {
        for i in SUB_COUNT..NUM_BUCKETS {
            let upper = bucket_upper(i);
            let lower = bucket_upper(i - 1) + 1;
            let width = upper - lower + 1;
            // Width never exceeds lower / SUB_COUNT (12.5% relative error).
            assert!(
                width as u128 * SUB_COUNT as u128 <= lower as u128 + SUB_COUNT as u128,
                "bucket {i}: lower={lower} width={width}"
            );
        }
    }
}
