//! Log-linear latency histograms with lock-free recording.
//!
//! The bucket layout is HDR-style log-linear over `u64` nanoseconds: each
//! power-of-two "octave" is split into [`SUB_COUNT`] equal-width linear
//! sub-buckets, so the relative width of any bucket is at most
//! `1 / SUB_COUNT` (12.5%). Recording is a single relaxed `fetch_add` on an
//! atomic bucket counter — no locks, no allocation — so it is safe to call
//! from the event loop and from every worker thread.
//!
//! [`HistogramSnapshot`]s are plain owned data: they can be merged
//! (bucket-wise addition) across shards or across scrape intervals, and they
//! answer nearest-rank quantile queries by walking the bucket array.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// log2 of the number of linear sub-buckets per octave.
pub const SUB_BITS: u32 = 3;
/// Linear sub-buckets per power-of-two octave (8 — ≤ 12.5% relative error).
pub const SUB_COUNT: usize = 1 << SUB_BITS;
/// Largest tracked exponent: values at or above 2^(MAX_EXP+1) ns saturate
/// into the final bucket (~549 s — far beyond any request the daemon serves).
const MAX_EXP: u32 = 38;
/// Total bucket count implied by `MAX_EXP` and `SUB_BITS`.
pub const NUM_BUCKETS: usize = ((MAX_EXP - SUB_BITS + 1) as usize + 1) * SUB_COUNT;

/// Largest value that maps to a bucket without saturating.
const MAX_TRACKED: u64 = (1u64 << (MAX_EXP + 1)) - 1;

/// Map a nanosecond value to its bucket index.
///
/// Values `0..SUB_COUNT` get unit-width buckets; beyond that each octave
/// `[2^e, 2^(e+1))` is split into `SUB_COUNT` equal slices.
pub fn bucket_index(value: u64) -> usize {
    let v = value.min(MAX_TRACKED);
    if v < SUB_COUNT as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    let shift = exp - SUB_BITS;
    let sub = ((v >> shift) as usize) & (SUB_COUNT - 1);
    ((exp - SUB_BITS + 1) as usize) * SUB_COUNT + sub
}

/// Inclusive upper bound (in nanoseconds) of bucket `index`.
pub fn bucket_upper(index: usize) -> u64 {
    debug_assert!(index < NUM_BUCKETS);
    if index < SUB_COUNT {
        return index as u64;
    }
    let decade = (index / SUB_COUNT) as u32;
    let sub = (index % SUB_COUNT) as u64;
    let shift = decade - 1;
    let lower = (SUB_COUNT as u64 + sub) << shift;
    lower + (1u64 << shift) - 1
}

/// Shared recording core: one atomic per bucket plus running sum and count.
#[derive(Debug)]
struct Core {
    buckets: Vec<AtomicU64>,
    sum_ns: AtomicU64,
    count: AtomicU64,
}

/// A lock-free log-linear latency histogram handle.
///
/// Cloning is cheap (an `Arc` bump) and every clone records into the same
/// bucket array, so a handle can be given to each worker thread.
#[derive(Clone, Debug)]
pub struct Histogram {
    core: Arc<Core>,
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        let buckets = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            core: Arc::new(Core {
                buckets,
                sum_ns: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// Record one observation in nanoseconds.
    ///
    /// Values beyond the tracked range (~549 s) are clamped before both
    /// bucketing and summing, so the running sum cannot wrap on garbage
    /// input.
    pub fn record(&self, ns: u64) {
        let v = ns.min(MAX_TRACKED);
        self.core.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.core.sum_ns.fetch_add(v, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an elapsed [`std::time::Duration`].
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Take a consistent-enough snapshot of the bucket array.
    ///
    /// Individual bucket loads are relaxed, so a snapshot taken concurrently
    /// with recording may be mid-update by a handful of observations; counts
    /// never go backwards between snapshots.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count: buckets.iter().sum(),
            sum_ns: self.core.sum_ns.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// An owned, mergeable copy of a histogram's state.
#[derive(Clone, Debug, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_upper`] for bounds).
    pub buckets: Vec<u64>,
    /// Total observations across all buckets.
    pub count: u64,
    /// Sum of all recorded values in nanoseconds.
    pub sum_ns: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (zero observations).
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum_ns: 0,
        }
    }

    /// Merge another snapshot into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += *src;
        }
        self.count += other.count;
        // Sums can legitimately saturate when extreme (clamped) observations
        // are merged; counts and buckets stay exact.
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
    }

    /// Nearest-rank quantile in nanoseconds.
    ///
    /// Returns the inclusive upper bound of the bucket holding the
    /// `ceil(q * count)`-th smallest observation — i.e. the estimate is
    /// never below the true quantile and overshoots by at most one bucket
    /// width (≤ 12.5% relative). Returns 0 for an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let mut rank = (q * self.count as f64).ceil() as u64;
        rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(self.buckets.len().saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_buckets_below_sub_count() {
        for v in 0..SUB_COUNT as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_are_contiguous_and_cover_the_domain() {
        // Every bucket's upper bound + 1 is the next bucket's smallest member.
        for i in 0..NUM_BUCKETS - 1 {
            let upper = bucket_upper(i);
            assert_eq!(bucket_index(upper), i, "upper of bucket {i} maps back");
            assert_eq!(bucket_index(upper + 1), i + 1, "bucket {i} is contiguous");
        }
        // Saturation: anything huge lands in the final bucket.
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(MAX_TRACKED), NUM_BUCKETS - 1);
    }

    #[test]
    fn relative_bucket_width_is_bounded() {
        for i in SUB_COUNT..NUM_BUCKETS {
            let upper = bucket_upper(i);
            let lower = bucket_upper(i - 1) + 1;
            let width = upper - lower + 1;
            // Width never exceeds lower / SUB_COUNT (12.5% relative error).
            assert!(
                width as u128 * SUB_COUNT as u128 <= lower as u128 + SUB_COUNT as u128,
                "bucket {i}: lower={lower} width={width}"
            );
        }
    }
}
