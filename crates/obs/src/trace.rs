//! Structured per-request traces: a span tree per request id, a bounded
//! in-memory ring of recent traces, and a single-line JSON encoding for the
//! `oneqd --trace-log` JSONL sink.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// One timed phase inside a request, offset-addressed from request start.
#[derive(Clone, Debug, Default)]
pub struct Span {
    /// Phase name (`read`, `queue`, `handle`, `cache`, `compile.mapping`,
    /// `write`, ...).
    pub name: &'static str,
    /// Nanoseconds from request start to span start.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Optional numeric attributes (per-partition compile profile counters
    /// and the like). Empty for plain timing spans; keys are fixed at the
    /// call site, never client-controlled.
    pub attrs: Vec<(&'static str, u64)>,
}

impl Span {
    /// Construct a span with no attributes.
    pub fn new(name: &'static str, start_ns: u64, dur_ns: u64) -> Self {
        Span {
            name,
            start_ns,
            dur_ns,
            attrs: Vec::new(),
        }
    }

    /// The same span carrying numeric attributes.
    pub fn with_attrs(mut self, attrs: Vec<(&'static str, u64)>) -> Self {
        self.attrs = attrs;
        self
    }

    /// The same span re-based `offset_ns` later — used when splicing a
    /// handler's relative spans into the whole-request timeline.
    pub fn shifted(mut self, offset_ns: u64) -> Self {
        self.start_ns = self.start_ns.saturating_add(offset_ns);
        self
    }
}

/// A completed request trace: identity, outcome, and its span tree.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// Request id (inbound `X-Oneqd-Request-Id` or generated).
    pub id: String,
    /// Connection id the request arrived on.
    pub conn: u64,
    /// Matched route (e.g. `/v1/compile`).
    pub route: String,
    /// HTTP status of the response.
    pub status: u16,
    /// Cache outcome for compile routes (`memory`/`disk`/`miss`/`coalesced`/
    /// `bypass`), empty otherwise.
    pub outcome: String,
    /// End-to-end duration (first request byte to last response byte).
    pub total_ns: u64,
    /// Timed phases, in start order.
    pub spans: Vec<Span>,
}

impl TraceRecord {
    /// Encode as a single JSON line (no trailing newline). Spans with
    /// attributes gain an `"attrs"` object; plain spans render exactly as
    /// before, so pre-existing trace-log consumers see unchanged lines.
    ///
    /// ```
    /// use oneq_obs::{Span, TraceRecord};
    ///
    /// let record = TraceRecord {
    ///     id: "abc-1".to_string(),
    ///     conn: 3,
    ///     route: "/v1/compile".to_string(),
    ///     status: 200,
    ///     outcome: "miss".to_string(),
    ///     total_ns: 1500,
    ///     spans: vec![Span::new("read", 0, 500)],
    /// };
    /// assert_eq!(
    ///     record.to_json(),
    ///     "{\"request_id\": \"abc-1\", \"conn\": 3, \"route\": \"/v1/compile\", \
    ///      \"status\": 200, \"outcome\": \"miss\", \"total_ns\": 1500, \"spans\": \
    ///      [{\"name\": \"read\", \"start_ns\": 0, \"dur_ns\": 500}]}"
    /// );
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.spans.len() * 48);
        out.push_str("{\"request_id\": ");
        push_json_string(&mut out, &self.id);
        out.push_str(", \"conn\": ");
        out.push_str(&self.conn.to_string());
        out.push_str(", \"route\": ");
        push_json_string(&mut out, &self.route);
        out.push_str(", \"status\": ");
        out.push_str(&self.status.to_string());
        out.push_str(", \"outcome\": ");
        push_json_string(&mut out, &self.outcome);
        out.push_str(", \"total_ns\": ");
        out.push_str(&self.total_ns.to_string());
        out.push_str(", \"spans\": [");
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"name\": ");
            push_json_string(&mut out, span.name);
            out.push_str(", \"start_ns\": ");
            out.push_str(&span.start_ns.to_string());
            out.push_str(", \"dur_ns\": ");
            out.push_str(&span.dur_ns.to_string());
            if !span.attrs.is_empty() {
                out.push_str(", \"attrs\": {");
                for (j, (key, value)) in span.attrs.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    push_json_string(&mut out, key);
                    out.push_str(": ");
                    out.push_str(&value.to_string());
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string encoder (quotes, backslash, control characters).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A bounded ring of the most recent [`TraceRecord`]s.
///
/// Pushing beyond capacity evicts the oldest record; `pushed()` keeps the
/// all-time total so a reader can tell how much history the ring dropped.
#[derive(Debug)]
pub struct TraceBuffer {
    capacity: usize,
    ring: Mutex<VecDeque<TraceRecord>>,
    pushed: AtomicU64,
}

impl TraceBuffer {
    /// Create a ring holding at most `capacity` records (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceBuffer {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            pushed: AtomicU64::new(0),
        }
    }

    /// Append a record, evicting the oldest when full.
    pub fn push(&self, record: TraceRecord) {
        // ORDERING: Relaxed — `pushed` is an all-time statistic; record
        // visibility itself is ordered by the ring Mutex, not this counter.
        self.pushed.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// Number of records currently buffered.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("trace ring poisoned").len()
    }

    /// True when no records are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All-time number of records pushed (including evicted ones).
    pub fn pushed(&self) -> u64 {
        // ORDERING: Relaxed — statistics read with no dependent data.
        self.pushed.load(Ordering::Relaxed)
    }

    /// Clone out the newest `n` records, oldest first.
    pub fn recent(&self, n: usize) -> Vec<TraceRecord> {
        let ring = self.ring.lock().expect("trace ring poisoned");
        let skip = ring.len().saturating_sub(n);
        ring.iter().skip(skip).cloned().collect()
    }

    /// Look up the newest buffered record with the given request id.
    ///
    /// Ids are adopted from clients, so duplicates are possible; the newest
    /// match wins (it is the one the client just received the id for).
    /// Returns `None` once the record has been evicted by the ring bound.
    pub fn get(&self, id: &str) -> Option<TraceRecord> {
        let ring = self.ring.lock().expect("trace ring poisoned");
        ring.iter().rev().find(|r| r.id == id).cloned()
    }

    /// Filtered scan, newest first, at most `limit` records.
    ///
    /// Each filter is conjunctive: `route` matches exactly, `status` matches
    /// exactly, `min_total_ns` keeps records at least that slow. The lock is
    /// held for one bounded pass over the ring (≤ capacity records).
    pub fn query(
        &self,
        route: Option<&str>,
        status: Option<u16>,
        min_total_ns: Option<u64>,
        limit: usize,
    ) -> Vec<TraceRecord> {
        let ring = self.ring.lock().expect("trace ring poisoned");
        ring.iter()
            .rev()
            .filter(|r| route.map_or(true, |want| r.route == want))
            .filter(|r| status.map_or(true, |want| r.status == want))
            .filter(|r| min_total_ns.map_or(true, |want| r.total_ns >= want))
            .take(limit)
            .cloned()
            .collect()
    }

    /// The `n` slowest buffered records by end-to-end time, slowest first.
    /// Ties break toward the newer record so a fresh spike outranks stale
    /// history at the same latency.
    pub fn slowest(&self, n: usize) -> Vec<TraceRecord> {
        let ring = self.ring.lock().expect("trace ring poisoned");
        let mut all: Vec<TraceRecord> = ring.iter().cloned().collect();
        drop(ring);
        // Newest-first before the stable sort ⇒ newer wins ties.
        all.reverse();
        all.sort_by_key(|r| std::cmp::Reverse(r.total_ns));
        all.truncate(n);
        all
    }
}

/// Request-id generator: a per-process random-ish prefix plus a sequence
/// number, unique within and across daemon restarts for all practical
/// purposes.
#[derive(Debug)]
pub struct RequestIds {
    prefix: u64,
    seq: AtomicU64,
}

impl RequestIds {
    /// Seed a generator from wall-clock time and the process id.
    pub fn new() -> Self {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        // FNV-1a mix of time and pid: cheap, std-only, and good enough to
        // keep prefixes from colliding across restarts.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for byte in nanos
            .to_le_bytes()
            .into_iter()
            .chain(u64::from(std::process::id()).to_le_bytes())
        {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        RequestIds {
            prefix: h,
            seq: AtomicU64::new(0),
        }
    }

    /// Mint the next id, e.g. `3f9c2d10a4e8b761-000001`.
    pub fn next(&self) -> String {
        // ORDERING: Relaxed — fetch_add's atomicity alone guarantees unique
        // ids; no other memory is published under this sequence number.
        let n = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        format!("{:016x}-{:06x}", self.prefix, n)
    }
}

impl Default for RequestIds {
    fn default() -> Self {
        RequestIds::new()
    }
}

/// Whether an inbound `X-Oneqd-Request-Id` value is safe to adopt: 1–64
/// characters drawn from `[A-Za-z0-9._-]`. Anything else is replaced with a
/// generated id so client input cannot corrupt trace logs or headers.
pub fn valid_request_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: &str) -> TraceRecord {
        TraceRecord {
            id: id.to_string(),
            conn: 1,
            route: "/v1/healthz".to_string(),
            status: 200,
            outcome: String::new(),
            total_ns: 10,
            spans: Vec::new(),
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_all_pushes() {
        let ring = TraceBuffer::new(3);
        for i in 0..5 {
            ring.push(record(&format!("r{i}")));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.pushed(), 5);
        let ids: Vec<String> = ring.recent(10).into_iter().map(|r| r.id).collect();
        assert_eq!(ids, ["r2", "r3", "r4"]);
        let newest: Vec<String> = ring.recent(1).into_iter().map(|r| r.id).collect();
        assert_eq!(newest, ["r4"]);
    }

    #[test]
    fn json_encoding_escapes_hostile_ids() {
        let mut r = record("a\"b\\c\nd");
        r.spans.push(Span::new("read", 0, 2));
        let line = r.to_json();
        assert!(line.contains("\"request_id\": \"a\\\"b\\\\c\\nd\""));
        assert!(!line.contains('\n'), "record stays on one line");
    }

    #[test]
    fn span_attrs_render_as_a_json_object_only_when_present() {
        let mut r = record("attrs-1");
        r.spans.push(Span::new("read", 0, 2));
        r.spans.push(
            Span::new("compile.mapping.partition", 2, 5)
                .with_attrs(vec![("partition", 0), ("bfs_expansions", 42)]),
        );
        let line = r.to_json();
        assert!(line.contains(
            "{\"name\": \"read\", \"start_ns\": 0, \"dur_ns\": 2}, \
             {\"name\": \"compile.mapping.partition\", \"start_ns\": 2, \"dur_ns\": 5, \
             \"attrs\": {\"partition\": 0, \"bfs_expansions\": 42}}"
        ));
    }

    fn shaped(id: &str, route: &str, status: u16, total_ns: u64) -> TraceRecord {
        TraceRecord {
            id: id.to_string(),
            conn: 1,
            route: route.to_string(),
            status,
            outcome: String::new(),
            total_ns,
            spans: Vec::new(),
        }
    }

    #[test]
    fn get_finds_the_newest_match_and_respects_eviction() {
        let ring = TraceBuffer::new(3);
        ring.push(shaped("dup", "/v1/compile", 200, 10));
        ring.push(shaped("dup", "/v1/compile", 500, 20));
        assert_eq!(ring.get("dup").expect("present").status, 500);
        assert!(ring.get("absent").is_none());
        for i in 0..3 {
            ring.push(shaped(&format!("r{i}"), "/v1/healthz", 200, 1));
        }
        assert!(ring.get("dup").is_none(), "evicted records are gone");
    }

    #[test]
    fn query_filters_conjunctively_newest_first() {
        let ring = TraceBuffer::new(16);
        ring.push(shaped("a", "/v1/compile", 200, 1_000_000));
        ring.push(shaped("b", "/v1/compile", 422, 2_000_000));
        ring.push(shaped("c", "/v1/healthz", 200, 10));
        ring.push(shaped("d", "/v1/compile", 200, 9_000_000));
        let ids = |records: Vec<TraceRecord>| -> Vec<String> {
            records.into_iter().map(|r| r.id).collect()
        };
        assert_eq!(ids(ring.query(None, None, None, 10)), ["d", "c", "b", "a"]);
        assert_eq!(
            ids(ring.query(Some("/v1/compile"), Some(200), None, 10)),
            ["d", "a"]
        );
        assert_eq!(
            ids(ring.query(Some("/v1/compile"), None, Some(2_000_000), 10)),
            ["d", "b"]
        );
        assert_eq!(ids(ring.query(None, None, None, 2)), ["d", "c"]);
        assert!(ring.query(Some("/nope"), None, None, 10).is_empty());
    }

    #[test]
    fn slowest_sorts_by_total_with_newer_winning_ties() {
        let ring = TraceBuffer::new(16);
        ring.push(shaped("old-tie", "/v1/compile", 200, 500));
        ring.push(shaped("fast", "/v1/healthz", 200, 10));
        ring.push(shaped("slow", "/v1/compile", 200, 9_000));
        ring.push(shaped("new-tie", "/v1/compile", 200, 500));
        let ids: Vec<String> = ring.slowest(3).into_iter().map(|r| r.id).collect();
        assert_eq!(ids, ["slow", "new-tie", "old-tie"]);
    }

    #[test]
    fn request_id_validation() {
        assert!(valid_request_id("abc-123.DEF_x"));
        assert!(!valid_request_id(""));
        assert!(!valid_request_id("has space"));
        assert!(!valid_request_id("bad\nnewline"));
        assert!(!valid_request_id(&"x".repeat(65)));
    }

    #[test]
    fn generated_ids_are_distinct() {
        let ids = RequestIds::new();
        let a = ids.next();
        let b = ids.next();
        assert_ne!(a, b);
        assert!(valid_request_id(&a), "generated ids pass validation: {a}");
    }
}
