//! Minimal complex arithmetic for the simulators.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub};

/// A complex number with `f64` components.
///
/// # Example
///
/// ```
/// use oneq_sim::Complex;
///
/// let i = Complex::I;
/// assert_eq!(i * i, -Complex::ONE);
/// assert!((Complex::from_polar(1.0, std::f64::consts::PI).re + 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// Multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates `r · e^{iθ}`.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// `true` when both components are within `tol` of `other`'s.
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.4}+{:.4}i", self.re, self.im)
        } else {
            write!(f, "{:.4}-{:.4}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex::I * Complex::I, -Complex::ONE);
    }

    #[test]
    fn conj_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, PI / 2.0);
        assert!(z.approx_eq(Complex::new(0.0, 2.0), 1e-12));
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex::ONE;
        z += Complex::I;
        z *= Complex::new(0.0, 1.0);
        assert!(z.approx_eq(Complex::new(-1.0, 1.0), 1e-12));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Complex::new(1.0, -0.5)).is_empty());
    }
}
