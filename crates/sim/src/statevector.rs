//! Dense state-vector simulator.
//!
//! Qubit `q` corresponds to bit `q` of the basis-state index (little
//! endian). Practical up to ~20 qubits; OneQ uses it to verify the
//! circuit→pattern translation on small programs.

use crate::complex::Complex;
use oneq_circuit::{Circuit, Gate};
use rand::Rng;
use std::f64::consts::FRAC_1_SQRT_2;

/// A pure quantum state over `n` qubits.
///
/// # Example
///
/// ```
/// use oneq_circuit::Circuit;
/// use oneq_sim::StateVector;
///
/// let mut c = Circuit::new(2);
/// c.h(0).cnot(0, 1); // Bell state
/// let sv = StateVector::run_circuit(&c);
/// assert!((sv.probability(0b00) - 0.5).abs() < 1e-12);
/// assert!((sv.probability(0b11) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct StateVector {
    n: usize,
    amps: Vec<Complex>,
}

impl StateVector {
    /// The all-zeros computational basis state `|0...0>`.
    pub fn zero_state(n: usize) -> Self {
        assert!(n <= 26, "state-vector simulation is capped at 26 qubits");
        let mut amps = vec![Complex::ZERO; 1 << n];
        amps[0] = Complex::ONE;
        StateVector { n, amps }
    }

    /// A state with zero qubits (single unit amplitude); qubits are added
    /// with [`StateVector::add_qubit`].
    pub fn empty() -> Self {
        StateVector {
            n: 0,
            amps: vec![Complex::ONE],
        }
    }

    /// Runs `circuit` on `|0...0>`.
    pub fn run_circuit(circuit: &Circuit) -> Self {
        let mut sv = StateVector::zero_state(circuit.n_qubits());
        for g in circuit.gates() {
            sv.apply_gate(g);
        }
        sv
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// The raw amplitudes (little-endian basis index).
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// Probability of observing basis state `index` exactly.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^n`.
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// Appends a new qubit (as the highest index) in `|0>` or `|+>`.
    pub fn add_qubit(&mut self, plus: bool) {
        let old = std::mem::take(&mut self.amps);
        let len = old.len();
        let mut amps = vec![Complex::ZERO; len * 2];
        if plus {
            for (i, a) in old.into_iter().enumerate() {
                let half = a.scale(FRAC_1_SQRT_2);
                amps[i] = half;
                amps[i + len] = half;
            }
        } else {
            amps[..len].copy_from_slice(&old);
        }
        self.amps = amps;
        self.n += 1;
    }

    /// Applies a 2x2 unitary to qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q >= n`.
    pub fn apply_single(&mut self, q: usize, m: [[Complex; 2]; 2]) {
        assert!(q < self.n, "qubit {q} out of range");
        let stride = 1usize << q;
        let len = self.amps.len();
        let mut i = 0;
        while i < len {
            for off in 0..stride {
                let i0 = i + off;
                let i1 = i0 + stride;
                let a0 = self.amps[i0];
                let a1 = self.amps[i1];
                self.amps[i0] = m[0][0] * a0 + m[0][1] * a1;
                self.amps[i1] = m[1][0] * a0 + m[1][1] * a1;
            }
            i += stride * 2;
        }
    }

    /// Applies CZ between qubits `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range or they coincide.
    pub fn apply_cz(&mut self, a: usize, b: usize) {
        assert!(a < self.n && b < self.n && a != b, "bad CZ operands");
        let (ma, mb) = (1usize << a, 1usize << b);
        for (i, amp) in self.amps.iter_mut().enumerate() {
            if i & ma != 0 && i & mb != 0 {
                *amp = -*amp;
            }
        }
    }

    /// Applies CNOT with the given control and target.
    pub fn apply_cnot(&mut self, control: usize, target: usize) {
        assert!(
            control < self.n && target < self.n && control != target,
            "bad CNOT operands"
        );
        let (mc, mt) = (1usize << control, 1usize << target);
        for i in 0..self.amps.len() {
            if i & mc != 0 && i & mt == 0 {
                self.amps.swap(i, i | mt);
            }
        }
    }

    /// Applies any IR gate.
    pub fn apply_gate(&mut self, gate: &Gate) {
        let h = [
            [Complex::from(FRAC_1_SQRT_2), Complex::from(FRAC_1_SQRT_2)],
            [Complex::from(FRAC_1_SQRT_2), Complex::from(-FRAC_1_SQRT_2)],
        ];
        match *gate {
            Gate::H(q) => self.apply_single(q.index(), h),
            Gate::X(q) => self.apply_single(
                q.index(),
                [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]],
            ),
            Gate::Y(q) => self.apply_single(
                q.index(),
                [[Complex::ZERO, -Complex::I], [Complex::I, Complex::ZERO]],
            ),
            Gate::Z(q) => self.apply_phase(q.index(), std::f64::consts::PI),
            Gate::S(q) => self.apply_phase(q.index(), std::f64::consts::FRAC_PI_2),
            Gate::Sdg(q) => self.apply_phase(q.index(), -std::f64::consts::FRAC_PI_2),
            Gate::T(q) => self.apply_phase(q.index(), std::f64::consts::FRAC_PI_4),
            Gate::Tdg(q) => self.apply_phase(q.index(), -std::f64::consts::FRAC_PI_4),
            Gate::Rz(q, a) => self.apply_phase(q.index(), a),
            Gate::Rx(q, a) => {
                let c = Complex::from((a / 2.0).cos());
                let s = Complex::new(0.0, -(a / 2.0).sin());
                self.apply_single(q.index(), [[c, s], [s, c]]);
            }
            Gate::J(q, a) => {
                // J(α) = H · diag(1, e^{iα}).
                let e = Complex::from_polar(FRAC_1_SQRT_2, a);
                let r = Complex::from(FRAC_1_SQRT_2);
                self.apply_single(q.index(), [[r, e], [r, -e]]);
            }
            Gate::Cz(a, b) => self.apply_cz(a.index(), b.index()),
            Gate::Cnot { control, target } => self.apply_cnot(control.index(), target.index()),
            Gate::Swap(a, b) => {
                self.apply_cnot(a.index(), b.index());
                self.apply_cnot(b.index(), a.index());
                self.apply_cnot(a.index(), b.index());
            }
            Gate::Cp(a, b, theta) => {
                let (ma, mb) = (1usize << a.index(), 1usize << b.index());
                let phase = Complex::from_polar(1.0, theta);
                for (i, amp) in self.amps.iter_mut().enumerate() {
                    if i & ma != 0 && i & mb != 0 {
                        *amp *= phase;
                    }
                }
            }
            Gate::Ccx { c1, c2, target } => {
                let (m1, m2, mt) = (
                    1usize << c1.index(),
                    1usize << c2.index(),
                    1usize << target.index(),
                );
                for i in 0..self.amps.len() {
                    if i & m1 != 0 && i & m2 != 0 && i & mt == 0 {
                        self.amps.swap(i, i | mt);
                    }
                }
            }
        }
    }

    /// Applies `diag(1, e^{iθ})` to qubit `q`.
    pub fn apply_phase(&mut self, q: usize, theta: f64) {
        assert!(q < self.n, "qubit {q} out of range");
        let mask = 1usize << q;
        let phase = Complex::from_polar(1.0, theta);
        for (i, amp) in self.amps.iter_mut().enumerate() {
            if i & mask != 0 {
                *amp *= phase;
            }
        }
    }

    /// Probability that measuring qubit `q` in the Z basis yields 1.
    pub fn prob_one(&self, q: usize) -> f64 {
        let mask = 1usize << q;
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & mask != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Measures qubit `q` in the Z basis, collapsing the state (the qubit
    /// remains allocated). Returns the outcome.
    pub fn measure_qubit<R: Rng>(&mut self, q: usize, rng: &mut R) -> bool {
        let p1 = self.prob_one(q);
        let outcome = rng.gen_bool(p1.clamp(0.0, 1.0));
        self.project_qubit(q, outcome);
        outcome
    }

    /// Projects qubit `q` onto `outcome` and renormalizes.
    ///
    /// # Panics
    ///
    /// Panics if the projection has (near-)zero probability.
    pub fn project_qubit(&mut self, q: usize, outcome: bool) {
        let mask = 1usize << q;
        let mut norm = 0.0;
        for (i, amp) in self.amps.iter_mut().enumerate() {
            if ((i & mask) != 0) != outcome {
                *amp = Complex::ZERO;
            } else {
                norm += amp.norm_sqr();
            }
        }
        assert!(norm > 1e-12, "projection onto zero-probability branch");
        let scale = 1.0 / norm.sqrt();
        for amp in &mut self.amps {
            *amp = amp.scale(scale);
        }
    }

    /// Removes qubit `q`, which must be disentangled (e.g. just projected):
    /// keeps the branch where `q = outcome` and drops the bit.
    pub fn drop_qubit(&mut self, q: usize, outcome: bool) {
        let mask = 1usize << q;
        let low = mask - 1;
        let mut amps = Vec::with_capacity(self.amps.len() / 2);
        for i in 0..self.amps.len() / 2 {
            let src = (i & low) | ((i & !low) << 1) | if outcome { mask } else { 0 };
            amps.push(self.amps[src]);
        }
        self.amps = amps;
        self.n -= 1;
    }

    /// Permutes qubits so that old qubit `perm[k]` becomes qubit `k`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..n`.
    pub fn permute_qubits(&mut self, perm: &[usize]) {
        assert_eq!(perm.len(), self.n, "permutation must cover all qubits");
        let mut check = perm.to_vec();
        check.sort_unstable();
        assert!(
            check.iter().copied().eq(0..self.n),
            "perm must be a permutation"
        );
        let mut amps = vec![Complex::ZERO; self.amps.len()];
        for (i, &a) in self.amps.iter().enumerate() {
            let mut j = 0usize;
            for (new_bit, &old_bit) in perm.iter().enumerate() {
                if i & (1 << old_bit) != 0 {
                    j |= 1 << new_bit;
                }
            }
            amps[j] = a;
        }
        self.amps = amps;
    }

    /// Inner product `<self|other>`.
    ///
    /// # Panics
    ///
    /// Panics when dimensions differ.
    pub fn overlap(&self, other: &StateVector) -> Complex {
        assert_eq!(self.n, other.n, "states must have equal qubit counts");
        let mut acc = Complex::ZERO;
        for (a, b) in self.amps.iter().zip(other.amps.iter()) {
            acc += a.conj() * *b;
        }
        acc
    }

    /// `true` when the states agree up to a global phase: `|<a|b>| ≈ 1`.
    pub fn approx_eq_up_to_phase(&self, other: &StateVector, tol: f64) -> bool {
        if self.n != other.n {
            return false;
        }
        (self.overlap(other).abs() - 1.0).abs() <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::PI;

    #[test]
    fn zero_state_is_deterministic() {
        let sv = StateVector::zero_state(3);
        assert_eq!(sv.probability(0), 1.0);
        assert_eq!(sv.prob_one(0), 0.0);
    }

    #[test]
    fn bell_state_probabilities() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let sv = StateVector::run_circuit(&c);
        assert!((sv.probability(0) - 0.5).abs() < 1e-12);
        assert!((sv.probability(3) - 0.5).abs() < 1e-12);
        assert!(sv.probability(1) < 1e-12);
    }

    #[test]
    fn hh_is_identity() {
        let mut c = Circuit::new(1);
        c.h(0).h(0);
        let sv = StateVector::run_circuit(&c);
        assert!(sv.approx_eq_up_to_phase(&StateVector::zero_state(1), 1e-12));
    }

    #[test]
    fn x_flips() {
        let mut c = Circuit::new(2);
        c.x(1);
        let sv = StateVector::run_circuit(&c);
        assert!((sv.probability(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn j_gate_decomposition_consistency() {
        // J(α) must equal H followed by the phase diag(1, e^{iα}) applied
        // first: J(α) = H·P(α).
        let mut via_j = StateVector::zero_state(1);
        via_j.apply_single(
            0,
            [
                [Complex::from(FRAC_1_SQRT_2), Complex::from(FRAC_1_SQRT_2)],
                [Complex::from(FRAC_1_SQRT_2), Complex::from(-FRAC_1_SQRT_2)],
            ],
        ); // put into |+>
        let mut a = via_j.clone();
        a.apply_gate(&Gate::J(oneq_circuit::Qubit::new(0), 0.7));
        let mut b = via_j.clone();
        b.apply_phase(0, 0.7);
        b.apply_gate(&Gate::H(oneq_circuit::Qubit::new(0)));
        assert!(a.approx_eq_up_to_phase(&b, 1e-12));
    }

    #[test]
    fn swap_exchanges_amplitudes() {
        let mut c = Circuit::new(2);
        c.x(0).swap(0, 1);
        let sv = StateVector::run_circuit(&c);
        assert!((sv.probability(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cp_matches_cz_at_pi() {
        let mut c1 = Circuit::new(2);
        c1.h(0).h(1).cp(0, 1, PI);
        let mut c2 = Circuit::new(2);
        c2.h(0).h(1).cz(0, 1);
        let (a, b) = (StateVector::run_circuit(&c1), StateVector::run_circuit(&c2));
        assert!(a.approx_eq_up_to_phase(&b, 1e-12));
    }

    #[test]
    fn ccx_truth_table() {
        let mut c = Circuit::new(3);
        c.x(0).x(1).ccx(0, 1, 2);
        let sv = StateVector::run_circuit(&c);
        assert!((sv.probability(0b111) - 1.0).abs() < 1e-12);
        let mut c = Circuit::new(3);
        c.x(0).ccx(0, 1, 2);
        let sv = StateVector::run_circuit(&c);
        assert!((sv.probability(0b001) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn decomposed_circuits_match_originals() {
        use oneq_circuit::{benchmarks, decompose};
        let mut rng = StdRng::seed_from_u64(17);
        for c in [
            benchmarks::qft(4),
            benchmarks::rca(6),
            benchmarks::bv(&[true, false, true]),
            benchmarks::qaoa_maxcut_random(4, &mut rng),
        ] {
            let lowered = decompose::to_jcz(&c);
            let a = StateVector::run_circuit(&c);
            let b = StateVector::run_circuit(&lowered);
            assert!(
                a.approx_eq_up_to_phase(&b, 1e-9),
                "lowering changed the unitary action on |0..0>"
            );
        }
    }

    #[test]
    fn measurement_collapses() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let mut sv = StateVector::run_circuit(&c);
        let mut rng = StdRng::seed_from_u64(3);
        let outcome = sv.measure_qubit(0, &mut rng);
        // Perfectly correlated: qubit 1 must agree.
        assert!((sv.prob_one(1) - if outcome { 1.0 } else { 0.0 }).abs() < 1e-12);
    }

    #[test]
    fn add_and_drop_qubit_roundtrip() {
        let mut sv = StateVector::empty();
        sv.add_qubit(false); // |0>
        sv.add_qubit(true); // |+> as qubit 1
        assert_eq!(sv.n_qubits(), 2);
        assert!((sv.probability(0b00) - 0.5).abs() < 1e-12);
        sv.project_qubit(1, false);
        sv.drop_qubit(1, false);
        assert_eq!(sv.n_qubits(), 1);
        assert!((sv.probability(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn permute_qubits_moves_excitation() {
        let mut c = Circuit::new(3);
        c.x(2);
        let mut sv = StateVector::run_circuit(&c);
        sv.permute_qubits(&[2, 0, 1]); // old qubit 2 -> new qubit 0
        assert!((sv.probability(0b001) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero-probability")]
    fn impossible_projection_panics() {
        let mut sv = StateVector::zero_state(1);
        sv.project_qubit(0, true);
    }

    #[test]
    fn overlap_of_orthogonal_states_is_zero() {
        let a = StateVector::zero_state(1);
        let mut c = Circuit::new(1);
        c.x(0);
        let b = StateVector::run_circuit(&c);
        assert!(a.overlap(&b).abs() < 1e-12);
        assert!(!a.approx_eq_up_to_phase(&b, 1e-9));
    }
}
