//! # oneq-sim
//!
//! Quantum simulation substrate used to *verify* the OneQ compiler
//! (ISCA'23 reproduction).
//!
//! The paper validates its translation against known MBQC theory; since the
//! authors' in-house tooling is unavailable, this crate provides the
//! verification machinery from scratch:
//!
//! * [`Complex`] — minimal complex arithmetic (no external numeric crates),
//! * [`StateVector`] — a dense simulator for circuits up to ~20 qubits,
//! * [`Tableau`] — an Aaronson–Gottesman CHP stabilizer simulator for
//!   Clifford circuits and graph-state stabilizer checks at scale,
//! * [`pattern_sim`] — executes a measurement pattern (including the
//!   adaptive feed-forward) qubit-by-qubit over its causal cone and
//!   compares the result with the circuit-model state.
//!
//! # Example
//!
//! ```
//! use oneq_circuit::Circuit;
//! use oneq_mbqc::translate;
//! use oneq_sim::{pattern_sim, StateVector};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cnot(0, 1);
//! let pattern = translate::from_circuit(&c);
//! let mut rng = StdRng::seed_from_u64(1);
//! let mbqc_state = pattern_sim::simulate(&pattern, &mut rng);
//! let circuit_state = StateVector::run_circuit(&c);
//! assert!(mbqc_state.approx_eq_up_to_phase(&circuit_state, 1e-9));
//! ```

#![warn(missing_docs)]

mod complex;
pub mod pattern_sim;
mod stabilizer;
mod statevector;

pub use complex::Complex;
pub use stabilizer::{Pauli, Tableau};
pub use statevector::StateVector;
