//! Measurement-pattern execution over the causal cone.
//!
//! Simulates an MBQC pattern produced by [`oneq_mbqc::translate`]: qubits
//! are *activated* lazily (allocated in `|+>`, or `|0>` for circuit
//! inputs), entangled by CZ when both edge endpoints are live, measured in
//! their adapted basis — `E((-1)^s α + tπ)` with `s`/`t` the XOR of the X-
//! and Z-dependency outcomes (paper §2.2.1) — and then dropped from the
//! state. The live width is the causal-cone frontier, so patterns far
//! larger than 26 total nodes simulate fine as long as the frontier stays
//! small.
//!
//! This module is the ground truth used by the test-suite to show the
//! translation implements the original circuit.

use crate::statevector::StateVector;
use oneq_graph::NodeId;
use oneq_mbqc::{Basis, Pattern};
use rand::Rng;
use std::collections::{HashMap, HashSet};

/// Result of running a pattern: the output state plus per-node outcomes.
#[derive(Debug, Clone)]
pub struct PatternRun {
    /// Final state over the pattern's outputs, ordered like
    /// [`Pattern::outputs`].
    pub state: StateVector,
    /// Measurement outcome per node (`None` for outputs).
    pub outcomes: Vec<Option<bool>>,
}

/// Simulates `pattern` on the all-zeros input and returns the output state.
///
/// See [`run`] for the variant that also returns the outcome record.
///
/// # Panics
///
/// Panics if a measured node lacks a causal-flow successor (patterns from
/// [`oneq_mbqc::translate`] always have one) or the live frontier exceeds
/// the dense simulator's limit.
pub fn simulate<R: Rng>(pattern: &Pattern, rng: &mut R) -> StateVector {
    run(pattern, rng).state
}

/// Simulates `pattern` and returns both the output state and the outcomes.
pub fn run<R: Rng>(pattern: &Pattern, rng: &mut R) -> PatternRun {
    // Measurement-event order: node u is measured when its flow successor
    // is created, so sorting by successor id linearizes the causal flow and
    // guarantees every X-/Z-dependency is resolved before it is needed.
    let mut order: Vec<NodeId> = pattern.measured_nodes();
    for &n in &order {
        assert!(
            pattern.flow(n).is_some(),
            "measured node {n} has no flow successor; cannot linearize"
        );
    }
    order.sort_by_key(|&n| pattern.flow(n).expect("checked above").index());

    let mut sv = StateVector::empty();
    // node -> current qubit slot in `sv`.
    let mut slot: HashMap<NodeId, usize> = HashMap::new();
    let mut applied: HashSet<(NodeId, NodeId)> = HashSet::new();
    let inputs: HashSet<NodeId> = pattern.inputs().iter().copied().collect();
    let mut outcomes: Vec<Option<bool>> = vec![None; pattern.node_count()];

    let activate = |sv: &mut StateVector,
                    slot: &mut HashMap<NodeId, usize>,
                    applied: &mut HashSet<(NodeId, NodeId)>,
                    node: NodeId| {
        if slot.contains_key(&node) {
            return;
        }
        sv.add_qubit(!inputs.contains(&node));
        slot.insert(node, sv.n_qubits() - 1);
        for &nb in pattern.graph().neighbors(node) {
            if let Some(&other) = slot.get(&nb) {
                let key = if node < nb { (node, nb) } else { (nb, node) };
                if applied.insert(key) {
                    sv.apply_cz(slot[&node], other);
                }
            }
        }
    };

    for u in order {
        activate(&mut sv, &mut slot, &mut applied, u);
        for &nb in pattern.graph().neighbors(u) {
            // Already-measured neighbors had their CZ applied before they
            // were consumed; only future nodes need activation.
            if outcomes[nb.index()].is_none() {
                activate(&mut sv, &mut slot, &mut applied, nb);
            }
        }

        let s = parity(pattern.x_deps(u), &outcomes);
        let t = parity(pattern.z_deps(u), &outcomes);
        let basis = pattern.basis(u).adapted(s, t);
        let q = slot[&u];
        let outcome = match basis {
            Basis::Equatorial(alpha) => {
                // Rotate |±_α> onto |0>/|1>: apply diag(1, e^{-iα}) then H.
                sv.apply_phase(q, -alpha);
                sv.apply_single(q, hadamard());
                sv.measure_qubit(q, rng)
            }
            Basis::Z => sv.measure_qubit(q, rng),
            Basis::Output => unreachable!("outputs are not in the measured set"),
        };
        outcomes[u.index()] = Some(outcome);
        sv.drop_qubit(q, outcome);
        slot.remove(&u);
        for v in slot.values_mut() {
            if *v > q {
                *v -= 1;
            }
        }
    }

    // Activate any never-touched outputs (identity wires) and their edges.
    let outputs: Vec<NodeId> = pattern.outputs().to_vec();
    for &o in &outputs {
        activate(&mut sv, &mut slot, &mut applied, o);
    }

    // Final byproduct corrections on the outputs.
    for &o in &outputs {
        let q = slot[&o];
        if parity(pattern.x_deps(o), &outcomes) {
            sv.apply_single(q, pauli_x());
        }
        if parity(pattern.z_deps(o), &outcomes) {
            sv.apply_phase(q, std::f64::consts::PI);
        }
    }

    // Reorder so output k sits at qubit k.
    let perm: Vec<usize> = outputs.iter().map(|o| slot[o]).collect();
    sv.permute_qubits(&perm);

    PatternRun {
        state: sv,
        outcomes,
    }
}

fn parity(deps: &[NodeId], outcomes: &[Option<bool>]) -> bool {
    deps.iter()
        .map(|d| outcomes[d.index()].unwrap_or(false))
        .fold(false, |acc, b| acc ^ b)
}

fn hadamard() -> [[crate::Complex; 2]; 2] {
    let r = crate::Complex::from(std::f64::consts::FRAC_1_SQRT_2);
    [[r, r], [r, -r]]
}

fn pauli_x() -> [[crate::Complex; 2]; 2] {
    [
        [crate::Complex::ZERO, crate::Complex::ONE],
        [crate::Complex::ONE, crate::Complex::ZERO],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use oneq_circuit::{benchmarks, Circuit};
    use oneq_mbqc::translate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_circuit(c: &Circuit, seeds: std::ops::Range<u64>) {
        let reference = StateVector::run_circuit(c);
        let pattern = translate::from_circuit(c);
        for seed in seeds {
            let mut rng = StdRng::seed_from_u64(seed);
            let got = simulate(&pattern, &mut rng);
            assert!(
                got.approx_eq_up_to_phase(&reference, 1e-9),
                "pattern diverged from circuit (seed {seed})"
            );
        }
    }

    #[test]
    fn single_hadamard() {
        let mut c = Circuit::new(1);
        c.h(0);
        check_circuit(&c, 0..8);
    }

    #[test]
    fn single_t_gate() {
        let mut c = Circuit::new(1);
        c.t(0);
        check_circuit(&c, 0..8);
    }

    #[test]
    fn arbitrary_rotation_chain() {
        let mut c = Circuit::new(1);
        c.h(0).rz(0, 0.31).rx(0, 1.1).rz(0, -0.7);
        check_circuit(&c, 0..8);
    }

    #[test]
    fn bell_preparation() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        check_circuit(&c, 0..8);
    }

    #[test]
    fn cz_only() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).cz(0, 1);
        check_circuit(&c, 0..4);
    }

    #[test]
    fn non_clifford_entangled() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).cz(0, 1).t(0).t(1).cnot(0, 1).rz(1, 0.9);
        check_circuit(&c, 0..12);
    }

    #[test]
    fn three_qubit_ghz_with_phases() {
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).cnot(1, 2).t(2).h(2);
        check_circuit(&c, 0..8);
    }

    #[test]
    fn qft_three_qubits() {
        let c = benchmarks::qft(3);
        check_circuit(&c, 0..6);
    }

    #[test]
    fn small_bv_matches() {
        let c = benchmarks::bv(&[true, false]);
        check_circuit(&c, 0..4);
    }

    #[test]
    fn small_qaoa_matches() {
        let c = benchmarks::qaoa_maxcut(3, &[(0, 1), (1, 2)], 0.43, 0.91);
        check_circuit(&c, 0..6);
    }

    #[test]
    fn identity_wire_passes_through() {
        // Second wire has no gates: its input doubles as output.
        let mut c = Circuit::new(2);
        c.x(0);
        check_circuit(&c, 0..4);
    }

    #[test]
    fn random_circuits_match() {
        use rand::Rng;
        let mut gen = StdRng::seed_from_u64(99);
        for trial in 0..10 {
            let n = gen.gen_range(2..4usize);
            let mut c = Circuit::new(n);
            for _ in 0..gen.gen_range(3..9) {
                match gen.gen_range(0..6) {
                    0 => {
                        let q = gen.gen_range(0..n);
                        c.h(q);
                    }
                    1 => {
                        let q = gen.gen_range(0..n);
                        c.t(q);
                    }
                    2 => {
                        let q = gen.gen_range(0..n);
                        c.rz(q, gen.gen_range(-3.0..3.0));
                    }
                    3 => {
                        let q = gen.gen_range(0..n);
                        c.rx(q, gen.gen_range(-3.0..3.0));
                    }
                    4 => {
                        let a = gen.gen_range(0..n);
                        let b = (a + 1 + gen.gen_range(0..n - 1)) % n;
                        c.cz(a.min(b), a.max(b));
                    }
                    _ => {
                        let a = gen.gen_range(0..n);
                        let b = (a + 1 + gen.gen_range(0..n - 1)) % n;
                        c.cnot(a, b);
                    }
                }
            }
            let reference = StateVector::run_circuit(&c);
            let pattern = translate::from_circuit(&c);
            for seed in 0..4 {
                let mut rng = StdRng::seed_from_u64(1000 * trial + seed);
                let got = simulate(&pattern, &mut rng);
                assert!(
                    got.approx_eq_up_to_phase(&reference, 1e-9),
                    "trial {trial} seed {seed} diverged:\n{c}"
                );
            }
        }
    }

    #[test]
    fn z_measured_redundant_qubit_is_removed_cleanly() {
        // Hand-built pattern: a 2-node wire (H gate) with a third qubit
        // attached to the output and removed by a Z measurement. Removing
        // a |+> neighbor in the Z basis leaves the wire state intact up to
        // a heralded Z correction, which the dependency records.
        use oneq_mbqc::{Basis, Pattern};
        let mut p = Pattern::new();
        let a = p.add_node(Basis::Equatorial(0.0)); // input, measured E(0) = H
        let b = p.add_node(Basis::Output);
        let r = p.add_node(Basis::Z); // redundant qubit
        p.add_entangling_edge(a, b).unwrap();
        p.add_entangling_edge(b, r).unwrap();
        p.mark_input(a);
        p.mark_output(b);
        p.set_flow(a, b).unwrap();
        p.add_x_dependency(b, a).unwrap();
        // Z-measuring r at outcome 1 applies Z to its neighbor b.
        p.set_flow(r, b).unwrap();
        p.add_z_dependency(b, r).unwrap();

        let mut c = Circuit::new(1);
        c.h(0);
        let reference = StateVector::run_circuit(&c);
        for seed in 0..8 {
            let mut rng = StdRng::seed_from_u64(seed);
            let got = simulate(&p, &mut rng);
            assert!(
                got.approx_eq_up_to_phase(&reference, 1e-9),
                "Z-removal must preserve the wire (seed {seed})"
            );
        }
    }

    #[test]
    fn outcomes_are_recorded() {
        let mut c = Circuit::new(1);
        c.h(0).t(0);
        let pattern = translate::from_circuit(&c);
        let mut rng = StdRng::seed_from_u64(0);
        let run = run(&pattern, &mut rng);
        let measured = pattern.measured_nodes();
        for n in pattern.nodes() {
            assert_eq!(
                run.outcomes[n.index()].is_some(),
                measured.contains(&n),
                "outcome recording mismatch on {n}"
            );
        }
    }
}
