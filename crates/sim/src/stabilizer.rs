//! Aaronson–Gottesman (CHP) stabilizer simulator.
//!
//! Tracks an `n`-qubit stabilizer state as a tableau of `n` destabilizer
//! and `n` stabilizer generators. Clifford gates are O(n); Z measurements
//! are O(n²). OneQ uses this to check graph-state stabilizers
//! (`X_i Z_{N(i)}`, paper §2.2.1) and to verify Clifford benchmarks (BV)
//! at sizes the dense simulator cannot reach.

use oneq_graph::Graph;
use rand::Rng;

/// A Hermitian Pauli operator `± P_1 ⊗ ... ⊗ P_n` (no `i` phase).
///
/// # Example
///
/// ```
/// use oneq_sim::Pauli;
///
/// // X_0 Z_1 with a plus sign.
/// let mut p = Pauli::identity(2);
/// p.set_x(0);
/// p.set_z(1);
/// assert!(!p.negated());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pauli {
    xs: Vec<bool>,
    zs: Vec<bool>,
    neg: bool,
}

impl Pauli {
    /// The identity operator on `n` qubits.
    pub fn identity(n: usize) -> Self {
        Pauli {
            xs: vec![false; n],
            zs: vec![false; n],
            neg: false,
        }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.xs.len()
    }

    /// Puts an X factor on qubit `q` (combined with an existing Z this
    /// makes a Y).
    pub fn set_x(&mut self, q: usize) -> &mut Self {
        self.xs[q] = true;
        self
    }

    /// Puts a Z factor on qubit `q`.
    pub fn set_z(&mut self, q: usize) -> &mut Self {
        self.zs[q] = true;
        self
    }

    /// Puts a Y factor on qubit `q`.
    pub fn set_y(&mut self, q: usize) -> &mut Self {
        self.xs[q] = true;
        self.zs[q] = true;
        self
    }

    /// Flips the overall sign.
    pub fn negate(&mut self) -> &mut Self {
        self.neg = !self.neg;
        self
    }

    /// `true` when the sign is −1.
    pub fn negated(&self) -> bool {
        self.neg
    }

    /// X mask accessor.
    pub fn x_bits(&self) -> &[bool] {
        &self.xs
    }

    /// Z mask accessor.
    pub fn z_bits(&self) -> &[bool] {
        &self.zs
    }
}

/// A stabilizer state over `n` qubits in CHP tableau form.
///
/// # Example
///
/// ```
/// use oneq_sim::{Pauli, Tableau};
///
/// // Bell state: Z_0 Z_1 and X_0 X_1 are stabilizers.
/// let mut t = Tableau::new(2);
/// t.h(0);
/// t.cnot(0, 1);
/// let mut zz = Pauli::identity(2);
/// zz.set_z(0).set_z(1);
/// assert_eq!(t.expectation(&zz), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct Tableau {
    n: usize,
    // Rows 0..n are destabilizers, n..2n stabilizers, row 2n is scratch.
    x: Vec<Vec<bool>>,
    z: Vec<Vec<bool>>,
    r: Vec<bool>,
}

impl Tableau {
    /// The computational basis state `|0...0>`.
    pub fn new(n: usize) -> Self {
        let rows = 2 * n + 1;
        let mut t = Tableau {
            n,
            x: vec![vec![false; n]; rows],
            z: vec![vec![false; n]; rows],
            r: vec![false; rows],
        };
        for i in 0..n {
            t.x[i][i] = true; // destabilizer X_i
            t.z[n + i][i] = true; // stabilizer Z_i
        }
        t
    }

    /// Builds the graph state of `graph`: every qubit in `|+>` entangled by
    /// CZ along each edge.
    pub fn graph_state(graph: &Graph) -> Self {
        let mut t = Tableau::new(graph.node_count());
        for q in 0..graph.node_count() {
            t.h(q);
        }
        for e in graph.sorted_edges() {
            t.cz(e.a().index(), e.b().index());
        }
        t
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Hadamard on `q`.
    pub fn h(&mut self, q: usize) {
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][q] & self.z[i][q];
            std::mem::swap(&mut self.x[i][q], &mut self.z[i][q]);
        }
    }

    /// Phase gate S on `q`.
    pub fn s(&mut self, q: usize) {
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][q] & self.z[i][q];
            self.z[i][q] ^= self.x[i][q];
        }
    }

    /// Inverse phase gate S† on `q`.
    pub fn sdg(&mut self, q: usize) {
        self.s(q);
        self.s(q);
        self.s(q);
    }

    /// Pauli X on `q`.
    pub fn x_gate(&mut self, q: usize) {
        for i in 0..2 * self.n {
            self.r[i] ^= self.z[i][q];
        }
    }

    /// Pauli Z on `q`.
    pub fn z_gate(&mut self, q: usize) {
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][q];
        }
    }

    /// CNOT with control `c` and target `t`.
    pub fn cnot(&mut self, c: usize, t: usize) {
        assert_ne!(c, t, "CNOT operands must differ");
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][c] & self.z[i][t] & (self.x[i][t] ^ self.z[i][c] ^ true);
            self.x[i][t] ^= self.x[i][c];
            self.z[i][c] ^= self.z[i][t];
        }
    }

    /// CZ between `a` and `b`.
    pub fn cz(&mut self, a: usize, b: usize) {
        self.h(b);
        self.cnot(a, b);
        self.h(b);
    }

    /// Phase exponent contribution of multiplying single-qubit Paulis:
    /// returns the power of `i` (in −1, 0, 1) accumulated when left-
    /// multiplying `(x2, z2)` onto `(x1, z1)`.
    fn g(x1: bool, z1: bool, x2: bool, z2: bool) -> i32 {
        match (x1, z1) {
            (false, false) => 0,
            (true, true) => (z2 as i32) - (x2 as i32),
            (true, false) => (z2 as i32) * (2 * (x2 as i32) - 1),
            (false, true) => (x2 as i32) * (1 - 2 * (z2 as i32)),
        }
    }

    /// Row `h` := row `h` * row `i` (with phase tracking).
    fn rowsum(&mut self, h: usize, i: usize) {
        let mut phase = 2 * (self.r[h] as i32) + 2 * (self.r[i] as i32);
        for j in 0..self.n {
            phase += Self::g(self.x[i][j], self.z[i][j], self.x[h][j], self.z[h][j]);
        }
        let phase = phase.rem_euclid(4);
        debug_assert!(phase == 0 || phase == 2, "tableau rows stay Hermitian");
        self.r[h] = phase == 2;
        for j in 0..self.n {
            self.x[h][j] ^= self.x[i][j];
            self.z[h][j] ^= self.z[i][j];
        }
    }

    /// Measures qubit `q` in the Z basis, collapsing the state. Returns the
    /// outcome (`true` = 1).
    pub fn measure_z<R: Rng>(&mut self, q: usize, rng: &mut R) -> bool {
        let n = self.n;
        // Random case: some stabilizer has X on q.
        if let Some(p) = (n..2 * n).find(|&i| self.x[i][q]) {
            let outcome = rng.gen_bool(0.5);
            for i in 0..2 * n {
                if i != p && self.x[i][q] {
                    self.rowsum(i, p);
                }
            }
            // Destabilizer p-n becomes the old stabilizer row p.
            self.x[p - n] = self.x[p].clone();
            self.z[p - n] = self.z[p].clone();
            self.r[p - n] = self.r[p];
            // Stabilizer row p becomes ±Z_q.
            self.x[p] = vec![false; n];
            self.z[p] = vec![false; n];
            self.z[p][q] = true;
            self.r[p] = outcome;
            outcome
        } else {
            // Deterministic: accumulate in the scratch row.
            let scratch = 2 * n;
            self.x[scratch] = vec![false; n];
            self.z[scratch] = vec![false; n];
            self.r[scratch] = false;
            for i in 0..n {
                if self.x[i][q] {
                    self.rowsum(scratch, i + n);
                }
            }
            self.r[scratch]
        }
    }

    /// Measures qubit `q` in the X basis.
    pub fn measure_x<R: Rng>(&mut self, q: usize, rng: &mut R) -> bool {
        self.h(q);
        let m = self.measure_z(q, rng);
        self.h(q);
        m
    }

    /// Measures qubit `q` in the Y basis.
    pub fn measure_y<R: Rng>(&mut self, q: usize, rng: &mut R) -> bool {
        self.sdg(q);
        self.h(q);
        let m = self.measure_z(q, rng);
        self.h(q);
        self.s(q);
        m
    }

    /// Expectation of a Pauli operator: `Some(+1)` / `Some(-1)` when the
    /// state is a ±1 eigenstate of `pauli`, `None` when the expectation is
    /// 0 (the operator anticommutes with some stabilizer).
    ///
    /// # Panics
    ///
    /// Panics if `pauli` has the wrong qubit count.
    pub fn expectation(&self, pauli: &Pauli) -> Option<i8> {
        assert_eq!(pauli.n_qubits(), self.n, "pauli width mismatch");
        let n = self.n;
        // Anticommutation with any stabilizer => expectation 0.
        for i in n..2 * n {
            let mut sym = false;
            for j in 0..n {
                sym ^= (self.x[i][j] & pauli.zs[j]) ^ (self.z[i][j] & pauli.xs[j]);
            }
            if sym {
                return None;
            }
        }
        // P is ± a product of stabilizers; the factors are the stabilizers
        // whose destabilizer partners anticommute with P.
        let mut work = self.clone();
        let scratch = 2 * n;
        work.x[scratch] = vec![false; n];
        work.z[scratch] = vec![false; n];
        work.r[scratch] = false;
        for i in 0..n {
            let mut sym = false;
            for j in 0..n {
                sym ^= (self.x[i][j] & pauli.zs[j]) ^ (self.z[i][j] & pauli.xs[j]);
            }
            if sym {
                work.rowsum(scratch, i + n);
            }
        }
        debug_assert_eq!(work.x[scratch], pauli.xs, "P must lie in the group");
        debug_assert_eq!(work.z[scratch], pauli.zs, "P must lie in the group");
        let sign = work.r[scratch] ^ pauli.neg;
        Some(if sign { -1 } else { 1 })
    }

    /// Convenience: `true` when `pauli` stabilizes the state (expectation
    /// exactly +1).
    pub fn stabilizes(&self, pauli: &Pauli) -> bool {
        self.expectation(pauli) == Some(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oneq_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_state_is_stabilized_by_z() {
        let t = Tableau::new(3);
        for q in 0..3 {
            let mut p = Pauli::identity(3);
            p.set_z(q);
            assert!(t.stabilizes(&p));
            let mut x = Pauli::identity(3);
            x.set_x(q);
            assert_eq!(t.expectation(&x), None);
        }
    }

    #[test]
    fn x_gate_flips_z_expectation() {
        let mut t = Tableau::new(1);
        t.x_gate(0);
        let mut z = Pauli::identity(1);
        z.set_z(0);
        assert_eq!(t.expectation(&z), Some(-1));
    }

    #[test]
    fn bell_state_stabilizers() {
        let mut t = Tableau::new(2);
        t.h(0);
        t.cnot(0, 1);
        let mut zz = Pauli::identity(2);
        zz.set_z(0).set_z(1);
        let mut xx = Pauli::identity(2);
        xx.set_x(0).set_x(1);
        assert!(t.stabilizes(&zz));
        assert!(t.stabilizes(&xx));
        let mut zi = Pauli::identity(2);
        zi.set_z(0);
        assert_eq!(t.expectation(&zi), None);
    }

    #[test]
    fn bell_measurements_are_correlated() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let mut t = Tableau::new(2);
            t.h(0);
            t.cnot(0, 1);
            let a = t.measure_z(0, &mut rng);
            let b = t.measure_z(1, &mut rng);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn graph_state_stabilizers_hold() {
        // The defining stabilizers X_i Z_{N(i)} must all be +1.
        for g in [
            generators::path(6),
            generators::cycle(5),
            generators::star(7),
            generators::grid(3, 4),
        ] {
            let t = Tableau::graph_state(&g);
            for v in g.nodes() {
                let mut p = Pauli::identity(g.node_count());
                p.set_x(v.index());
                for &w in g.neighbors(v) {
                    p.set_z(w.index());
                }
                assert!(t.stabilizes(&p), "stabilizer of {v} violated");
            }
        }
    }

    #[test]
    fn graph_state_x_measurement_is_random() {
        let g = generators::path(3);
        let mut t = Tableau::graph_state(&g);
        let mut rng = StdRng::seed_from_u64(5);
        // Any single-qubit Z on a graph state with edges is undetermined.
        let mut z = Pauli::identity(3);
        z.set_z(1);
        assert_eq!(t.expectation(&z), None);
        let _ = t.measure_z(1, &mut rng);
        // After measurement, Z_1 is determined.
        let mut z1 = Pauli::identity(3);
        z1.set_z(1);
        assert!(t.expectation(&z1).is_some());
    }

    #[test]
    fn ghz_parity_is_deterministic() {
        let mut t = Tableau::new(3);
        t.h(0);
        t.cnot(0, 1);
        t.cnot(1, 2);
        let mut xxx = Pauli::identity(3);
        xxx.set_x(0).set_x(1).set_x(2);
        assert!(t.stabilizes(&xxx));
        let mut rng = StdRng::seed_from_u64(1);
        let m0 = t.measure_z(0, &mut rng);
        let m1 = t.measure_z(1, &mut rng);
        let m2 = t.measure_z(2, &mut rng);
        assert_eq!(m0, m1);
        assert_eq!(m1, m2);
    }

    #[test]
    fn s_gate_turns_x_into_y() {
        let mut t = Tableau::new(1);
        t.h(0); // |+>, stabilized by X
        t.s(0); // now stabilized by Y
        let mut y = Pauli::identity(1);
        y.set_y(0);
        assert!(t.stabilizes(&y));
    }

    #[test]
    fn sdg_is_inverse_of_s() {
        let mut t = Tableau::new(1);
        t.h(0);
        t.s(0);
        t.sdg(0);
        let mut x = Pauli::identity(1);
        x.set_x(0);
        assert!(t.stabilizes(&x));
    }

    #[test]
    fn measure_x_on_plus_state_is_deterministic() {
        let mut t = Tableau::new(1);
        t.h(0);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!t.measure_x(0, &mut rng)); // |+> gives outcome 0
        t.z_gate(0); // |->
        assert!(t.measure_x(0, &mut rng));
    }

    #[test]
    fn measure_y_on_y_eigenstate() {
        let mut t = Tableau::new(1);
        t.h(0);
        t.s(0); // +1 eigenstate of Y
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!t.measure_y(0, &mut rng));
    }

    #[test]
    fn repeated_measurement_is_stable() {
        let mut t = Tableau::new(2);
        t.h(0);
        t.cnot(0, 1);
        let mut rng = StdRng::seed_from_u64(7);
        let first = t.measure_z(0, &mut rng);
        for _ in 0..5 {
            assert_eq!(t.measure_z(0, &mut rng), first);
        }
    }

    #[test]
    fn negated_pauli_expectation() {
        let t = Tableau::new(1);
        let mut mz = Pauli::identity(1);
        mz.set_z(0).negate();
        assert_eq!(t.expectation(&mz), Some(-1));
    }

    #[test]
    fn large_graph_state_scales() {
        let g = generators::grid(10, 10);
        let t = Tableau::graph_state(&g);
        let mut p = Pauli::identity(100);
        p.set_x(55);
        for &w in g.neighbors(oneq_graph::NodeId::new(55)) {
            p.set_z(w.index());
        }
        assert!(t.stabilizes(&p));
    }
}
