//! Dense, row-major occupancy grids for layer layouts.
//!
//! The mapping engine (paper §6) and the baseline router both track which
//! grid cell holds what. Hashed cell maps make those queries O(1) but give
//! up two things a compiler hot path needs: *deterministic iteration*
//! (hashed order varies between otherwise identical runs, so tie-breaking
//! — and therefore layouts and reported metrics — drifts) and *cache
//! locality*. [`CellGrid`] stores cells in a flat `Vec` indexed
//! `row * cols + col`: queries stay O(1), iteration is row-major and
//! deterministic by construction, and the incremental bounding box makes
//! the mapper's `occupied_area` cost term O(1) per candidate.
//!
//! [`BfsScratch`] is the companion: reusable breadth-first-search
//! bookkeeping (visited marks, predecessor links, queue) that the in-layer
//! router re-arms in O(1) between searches via an epoch counter instead of
//! reallocating per call.

use crate::geometry::{LayerGeometry, Position};
use std::cell::Cell;
use std::collections::VecDeque;

/// Cached bounding-box state: either an up-to-date `(rmin, rmax, cmin,
/// cmax)` of the occupied cells (`None` when empty), or dirty after a
/// boundary-cell removal — recomputed lazily on the next read, so users
/// that never read the bounding box (e.g. the baseline SWAP router, which
/// moves occupants constantly) never pay the O(area) rescan.
#[derive(Debug, Clone, Copy)]
enum BboxCache {
    Clean(Option<(usize, usize, usize, usize)>),
    Dirty,
}

/// A dense, row-major occupancy grid over a [`LayerGeometry`].
///
/// Each cell is either free or holds a `T`. Iteration order is row-major
/// (row 0 left to right, then row 1, …) and therefore identical across
/// runs — the property the hashed predecessor of this type lacked.
///
/// # Example
///
/// ```
/// use oneq_hardware::{CellGrid, LayerGeometry, Position};
///
/// let mut grid: CellGrid<u32> = CellGrid::new(LayerGeometry::new(3, 4));
/// grid.set(Position::new(1, 2), 7);
/// assert!(grid.is_free(Position::new(0, 0)));
/// assert_eq!(grid.get(Position::new(1, 2)), Some(&7));
/// assert_eq!(grid.occupied_cells(), 1);
/// assert_eq!(grid.bounding_box_area(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CellGrid<T> {
    geometry: LayerGeometry,
    cells: Vec<Option<T>>,
    occupied: usize,
    bbox: Cell<BboxCache>,
}

impl<T> CellGrid<T> {
    /// An empty grid over `geometry`.
    pub fn new(geometry: LayerGeometry) -> Self {
        let mut cells = Vec::new();
        cells.resize_with(geometry.area(), || None);
        CellGrid {
            geometry,
            cells,
            occupied: 0,
            bbox: Cell::new(BboxCache::Clean(None)),
        }
    }

    /// The underlying geometry.
    pub fn geometry(&self) -> LayerGeometry {
        self.geometry
    }

    /// The occupant of `p`, or `None` when the cell is free or outside the
    /// grid.
    pub fn get(&self, p: Position) -> Option<&T> {
        if !self.geometry.contains(p) {
            return None;
        }
        self.cells[self.geometry.index_of(p)].as_ref()
    }

    /// `true` when `p` lies inside the grid and is unoccupied.
    pub fn is_free(&self, p: Position) -> bool {
        self.geometry.contains(p) && self.cells[self.geometry.index_of(p)].is_none()
    }

    /// Occupies `p` with `value`, returning the previous occupant.
    ///
    /// # Panics
    ///
    /// Panics if `p` lies outside the grid.
    pub fn set(&mut self, p: Position, value: T) -> Option<T> {
        let idx = self.geometry.index_of(p);
        let old = self.cells[idx].replace(value);
        if old.is_none() {
            self.occupied += 1;
            if let BboxCache::Clean(bbox) = self.bbox.get() {
                self.bbox.set(BboxCache::Clean(Some(match bbox {
                    None => (p.row, p.row, p.col, p.col),
                    Some((rmin, rmax, cmin, cmax)) => (
                        rmin.min(p.row),
                        rmax.max(p.row),
                        cmin.min(p.col),
                        cmax.max(p.col),
                    ),
                })));
            }
        }
        old
    }

    /// Frees `p`, returning its occupant. Removing a cell on the bounding
    /// box's edge only marks the box dirty; the O(area) rescan happens
    /// lazily on the next [`CellGrid::bounding_box`] read, so
    /// movement-style users that never read it (the baseline router) keep
    /// O(1) removal.
    ///
    /// # Panics
    ///
    /// Panics if `p` lies outside the grid.
    pub fn remove(&mut self, p: Position) -> Option<T> {
        let idx = self.geometry.index_of(p);
        let old = self.cells[idx].take();
        if old.is_some() {
            self.occupied -= 1;
            if let BboxCache::Clean(Some((rmin, rmax, cmin, cmax))) = self.bbox.get() {
                if p.row == rmin || p.row == rmax || p.col == cmin || p.col == cmax {
                    self.bbox.set(BboxCache::Dirty);
                }
            }
        }
        old
    }

    fn recompute_bbox(&self) -> Option<(usize, usize, usize, usize)> {
        let mut bbox: Option<(usize, usize, usize, usize)> = None;
        for (p, _) in self.iter() {
            bbox = Some(match bbox {
                None => (p.row, p.row, p.col, p.col),
                Some((rmin, rmax, cmin, cmax)) => (
                    rmin.min(p.row),
                    rmax.max(p.row),
                    cmin.min(p.col),
                    cmax.max(p.col),
                ),
            });
        }
        bbox
    }

    /// Number of occupied cells.
    pub fn occupied_cells(&self) -> usize {
        self.occupied
    }

    /// `true` when no cell is occupied.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// Area of the bounding box of all occupied cells (0 when empty).
    pub fn bounding_box_area(&self) -> usize {
        match self.bounding_box() {
            None => 0,
            Some((rmin, rmax, cmin, cmax)) => (rmax - rmin + 1) * (cmax - cmin + 1),
        }
    }

    /// Bounding box of all occupied cells as `(rmin, rmax, cmin, cmax)`.
    /// O(1) while cells are only added; the first read after a
    /// boundary-cell removal rescans the grid.
    pub fn bounding_box(&self) -> Option<(usize, usize, usize, usize)> {
        match self.bbox.get() {
            BboxCache::Clean(bbox) => bbox,
            BboxCache::Dirty => {
                let bbox = self.recompute_bbox();
                self.bbox.set(BboxCache::Clean(bbox));
                bbox
            }
        }
    }

    /// Row-major iterator over the occupied cells — the deterministic
    /// replacement for hashed-map iteration.
    pub fn iter(&self) -> impl Iterator<Item = (Position, &T)> + '_ {
        let cols = self.geometry.cols();
        self.cells
            .iter()
            .enumerate()
            .filter_map(move |(i, c)| c.as_ref().map(|v| (Position::new(i / cols, i % cols), v)))
    }
}

/// Reusable breadth-first-search bookkeeping over a dense grid.
///
/// Holds visited marks, predecessor links, and the BFS queue as flat
/// buffers sized to the grid area. [`BfsScratch::begin`] re-arms the
/// scratch in O(1) (epoch bump) so a router performing thousands of
/// searches per compile allocates these buffers once.
///
/// # Example
///
/// ```
/// use oneq_hardware::BfsScratch;
///
/// let mut bfs = BfsScratch::new();
/// bfs.begin(16);
/// assert!(bfs.try_visit(5, 0));  // cell 5 discovered from cell 0
/// assert!(!bfs.try_visit(5, 3)); // already visited
/// assert_eq!(bfs.prev(5), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BfsScratch {
    mark: Vec<u32>,
    prev: Vec<u32>,
    epoch: u32,
    /// The BFS frontier as `(cell index, depth)` pairs.
    pub queue: VecDeque<(u32, u32)>,
    searches: u64,
    visits: u64,
    grows: u64,
    reuses: u64,
}

impl BfsScratch {
    /// An empty scratch; buffers grow on first [`BfsScratch::begin`].
    pub fn new() -> Self {
        BfsScratch::default()
    }

    /// Starts a fresh search over `area` cells: clears the queue and
    /// invalidates all marks in O(1).
    pub fn begin(&mut self, area: usize) {
        self.searches += 1;
        if self.mark.len() < area {
            self.mark.resize(area, 0);
            self.prev.resize(area, 0);
            self.grows += 1;
        } else {
            self.reuses += 1;
        }
        if self.epoch == u32::MAX {
            self.mark.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.queue.clear();
    }

    /// Marks `cell` as visited with predecessor `prev`; returns `false`
    /// when the cell was already visited this search.
    pub fn try_visit(&mut self, cell: usize, prev: usize) -> bool {
        if self.mark[cell] == self.epoch {
            return false;
        }
        self.mark[cell] = self.epoch;
        self.prev[cell] = prev as u32;
        self.visits += 1;
        true
    }

    /// `true` when `cell` was visited this search.
    pub fn is_visited(&self, cell: usize) -> bool {
        self.mark[cell] == self.epoch
    }

    /// Predecessor of a visited `cell`.
    pub fn prev(&self, cell: usize) -> usize {
        debug_assert!(self.is_visited(cell));
        self.prev[cell] as usize
    }

    /// Lifetime number of searches started ([`BfsScratch::begin`] calls).
    pub fn searches(&self) -> u64 {
        self.searches
    }

    /// Lifetime number of cells newly visited (successful
    /// [`BfsScratch::try_visit`] calls) — the BFS expansion count.
    pub fn visits(&self) -> u64 {
        self.visits
    }

    /// Lifetime number of `begin` calls that had to grow the buffers.
    pub fn grows(&self) -> u64 {
        self.grows
    }

    /// Lifetime number of `begin` calls that reused the buffers as-is.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_remove_roundtrip() {
        let mut grid: CellGrid<char> = CellGrid::new(LayerGeometry::new(4, 4));
        let p = Position::new(2, 3);
        assert!(grid.is_free(p));
        assert_eq!(grid.set(p, 'a'), None);
        assert!(!grid.is_free(p));
        assert_eq!(grid.get(p), Some(&'a'));
        assert_eq!(grid.set(p, 'b'), Some('a'));
        assert_eq!(grid.occupied_cells(), 1);
        assert_eq!(grid.remove(p), Some('b'));
        assert!(grid.is_free(p));
        assert_eq!(grid.occupied_cells(), 0);
    }

    #[test]
    fn out_of_bounds_queries_are_free_of_occupants() {
        let grid: CellGrid<u8> = CellGrid::new(LayerGeometry::new(2, 2));
        let outside = Position::new(5, 5);
        assert_eq!(grid.get(outside), None);
        assert!(!grid.is_free(outside), "outside cells are not placeable");
    }

    #[test]
    fn iteration_is_row_major() {
        let mut grid: CellGrid<u32> = CellGrid::new(LayerGeometry::new(3, 3));
        // Insert in scrambled order; iteration must come back row-major.
        for p in [
            Position::new(2, 0),
            Position::new(0, 1),
            Position::new(1, 2),
            Position::new(0, 0),
        ] {
            grid.set(p, (p.row * 3 + p.col) as u32);
        }
        let order: Vec<Position> = grid.iter().map(|(p, _)| p).collect();
        assert_eq!(
            order,
            vec![
                Position::new(0, 0),
                Position::new(0, 1),
                Position::new(1, 2),
                Position::new(2, 0),
            ]
        );
    }

    #[test]
    fn bounding_box_grows_and_shrinks() {
        let mut grid: CellGrid<()> = CellGrid::new(LayerGeometry::new(8, 8));
        assert_eq!(grid.bounding_box_area(), 0);
        grid.set(Position::new(2, 2), ());
        assert_eq!(grid.bounding_box_area(), 1);
        grid.set(Position::new(4, 5), ());
        assert_eq!(grid.bounding_box_area(), 12);
        grid.remove(Position::new(4, 5));
        assert_eq!(grid.bounding_box_area(), 1);
        grid.remove(Position::new(2, 2));
        assert_eq!(grid.bounding_box_area(), 0);
        assert!(grid.is_empty());
    }

    #[test]
    fn interior_removal_keeps_bbox() {
        let mut grid: CellGrid<()> = CellGrid::new(LayerGeometry::new(5, 5));
        for p in [
            Position::new(0, 0),
            Position::new(2, 2),
            Position::new(4, 4),
        ] {
            grid.set(p, ());
        }
        grid.remove(Position::new(2, 2));
        assert_eq!(grid.bounding_box(), Some((0, 4, 0, 4)));
    }

    /// Brute-force reference bounding box.
    fn naive_bbox(grid: &CellGrid<u8>) -> Option<(usize, usize, usize, usize)> {
        let mut bbox: Option<(usize, usize, usize, usize)> = None;
        for (p, _) in grid.iter() {
            bbox = Some(match bbox {
                None => (p.row, p.row, p.col, p.col),
                Some((rmin, rmax, cmin, cmax)) => (
                    rmin.min(p.row),
                    rmax.max(p.row),
                    cmin.min(p.col),
                    cmax.max(p.col),
                ),
            });
        }
        bbox
    }

    #[test]
    fn bbox_shrinks_then_regrows_through_vacate_reoccupy() {
        // The mapping hot path vacates boundary cells (node shuffles) and
        // re-occupies nearby, repeatedly; the incremental box must track
        // every shrink-then-regrow exactly.
        let mut grid: CellGrid<u8> = CellGrid::new(LayerGeometry::new(10, 10));
        for p in [
            Position::new(1, 1),
            Position::new(1, 8),
            Position::new(8, 1),
            Position::new(8, 8),
            Position::new(4, 4),
        ] {
            grid.set(p, 0);
        }
        assert_eq!(grid.bounding_box(), Some((1, 8, 1, 8)));
        // Vacate one extreme corner: the box shrinks on the next read.
        grid.remove(Position::new(8, 8));
        assert_eq!(
            grid.bounding_box(),
            Some((1, 8, 1, 8)),
            "other extremes hold the box"
        );
        grid.remove(Position::new(8, 1));
        assert_eq!(
            grid.bounding_box(),
            Some((1, 4, 1, 8)),
            "bottom row vacated"
        );
        grid.remove(Position::new(1, 8));
        assert_eq!(grid.bounding_box(), Some((1, 4, 1, 4)));
        // Re-occupy beyond the shrunken box: it must regrow incrementally.
        grid.set(Position::new(9, 2), 0);
        assert_eq!(grid.bounding_box(), Some((1, 9, 1, 4)));
        // Vacate + immediately re-occupy the same boundary cell.
        grid.remove(Position::new(9, 2));
        grid.set(Position::new(9, 2), 0);
        assert_eq!(grid.bounding_box(), Some((1, 9, 1, 4)));
        assert_eq!(grid.bounding_box(), naive_bbox(&grid));
    }

    #[test]
    fn bbox_set_while_dirty_is_counted_on_the_next_read() {
        // Removing a boundary cell marks the cached box dirty; a set that
        // lands while it is dirty must still be reflected by the rescan.
        let mut grid: CellGrid<u8> = CellGrid::new(LayerGeometry::new(8, 8));
        grid.set(Position::new(2, 2), 0);
        grid.set(Position::new(5, 5), 0);
        assert_eq!(grid.bounding_box(), Some((2, 5, 2, 5)));
        grid.remove(Position::new(5, 5)); // dirties the cache...
        grid.set(Position::new(7, 0), 0); // ...and this set sees it dirty
        grid.set(Position::new(0, 7), 0);
        assert_eq!(grid.bounding_box(), Some((0, 7, 0, 7)));
        assert_eq!(grid.bounding_box(), naive_bbox(&grid));
    }

    #[test]
    fn bbox_empty_regrow_cycles() {
        let mut grid: CellGrid<u8> = CellGrid::new(LayerGeometry::new(6, 6));
        for _ in 0..3 {
            grid.set(Position::new(3, 2), 0);
            grid.set(Position::new(1, 4), 0);
            assert_eq!(grid.bounding_box(), Some((1, 3, 2, 4)));
            grid.remove(Position::new(3, 2));
            grid.remove(Position::new(1, 4));
            assert_eq!(grid.bounding_box(), None, "fully vacated grid has no box");
            assert_eq!(grid.bounding_box_area(), 0);
        }
    }

    #[test]
    fn bbox_matches_brute_force_under_random_churn() {
        // Deterministic LCG so the sequence is reproducible without the
        // rand shim; interleave reads at varying cadences so both the
        // incremental path and the lazy rescan path are exercised.
        let mut state = 0x2023_cafe_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let geometry = LayerGeometry::new(7, 9);
        let mut grid: CellGrid<u8> = CellGrid::new(geometry);
        for step in 0..2000 {
            let p = Position::new(next() % 7, next() % 9);
            if next() % 2 == 0 {
                grid.set(p, 1);
            } else {
                grid.remove(p);
            }
            // Read on a varying cadence: sometimes right after a dirtying
            // remove, sometimes after a burst of writes.
            if step % (1 + next() % 5) == 0 {
                assert_eq!(grid.bounding_box(), naive_bbox(&grid), "step {step}");
            }
        }
        assert_eq!(grid.bounding_box(), naive_bbox(&grid));
    }

    #[test]
    fn bfs_scratch_epochs_invalidate() {
        let mut bfs = BfsScratch::new();
        bfs.begin(9);
        assert!(bfs.try_visit(3, 1));
        assert!(bfs.is_visited(3));
        bfs.begin(9);
        assert!(!bfs.is_visited(3), "new search forgets old marks");
        assert!(bfs.try_visit(3, 2));
        assert_eq!(bfs.prev(3), 2);
    }

    #[test]
    fn bfs_scratch_grows_to_larger_areas() {
        let mut bfs = BfsScratch::new();
        bfs.begin(4);
        assert!(bfs.try_visit(3, 0));
        bfs.begin(100);
        assert!(bfs.try_visit(99, 98));
        assert_eq!(bfs.prev(99), 98);
    }

    #[test]
    fn bfs_scratch_profiling_counters_track_lifetime_activity() {
        let mut bfs = BfsScratch::new();
        bfs.begin(16); // first begin allocates
        assert!(bfs.try_visit(0, 0));
        assert!(bfs.try_visit(1, 0));
        assert!(!bfs.try_visit(1, 0), "revisit does not count");
        bfs.begin(16); // same area: reuse
        assert!(bfs.try_visit(2, 0));
        bfs.begin(64); // larger area: grow
        assert_eq!(bfs.searches(), 3);
        assert_eq!(bfs.visits(), 3);
        assert_eq!(bfs.grows(), 2);
        assert_eq!(bfs.reuses(), 1);
    }
}
