//! Physical-layer geometry: the RSG grid and extended layers.

use std::fmt;

/// Largest neighbourhood size across all topologies (triangular: 6).
pub const MAX_NEIGHBORS: usize = 6;

/// A grid coordinate inside a physical layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Position {
    /// Row index.
    pub row: usize,
    /// Column index.
    pub col: usize,
}

impl Position {
    /// Creates a position.
    pub fn new(row: usize, col: usize) -> Self {
        Position { row, col }
    }

    /// Manhattan distance to `other`.
    pub fn manhattan(&self, other: Position) -> usize {
        self.row.abs_diff(other.row) + self.col.abs_diff(other.col)
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

/// The coupling structure between neighbouring RSGs within a layer.
///
/// The paper evaluates the orthogonal grid but notes its optimizations
/// "are also applicable when the coupling structure between RSGs are not
/// orthogonal (e.g., triangular, hexagonal)" (§7.2); this enum makes those
/// variants first-class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Topology {
    /// 4-neighbour square grid (the paper's default).
    #[default]
    Orthogonal,
    /// 6-neighbour triangular lattice (adds the NE/SW diagonals).
    Triangular,
    /// 3-neighbour honeycomb: each site couples E/W plus N or S depending
    /// on the cell parity.
    Hexagonal,
}

/// The rectangular RSG array producing one physical layer per clock cycle.
///
/// # Example
///
/// ```
/// use oneq_hardware::{LayerGeometry, Position};
///
/// let g = LayerGeometry::new(3, 4);
/// assert_eq!(g.area(), 12);
/// assert_eq!(g.neighbors(Position::new(0, 0)).len(), 2);
/// assert_eq!(g.neighbors(Position::new(1, 1)).len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayerGeometry {
    rows: usize,
    cols: usize,
    topology: Topology,
}

impl LayerGeometry {
    /// Creates a `rows x cols` layer with orthogonal coupling.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "layer dimensions must be positive");
        LayerGeometry {
            rows,
            cols,
            topology: Topology::Orthogonal,
        }
    }

    /// A square layer of the given side.
    pub fn square(side: usize) -> Self {
        LayerGeometry::new(side, side)
    }

    /// Returns the same array with a different coupling topology.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// The coupling topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// The rectangular layer closest to `area` with `length/width ≈ ratio`
    /// (paper Fig. 13 uses ratio ∈ {1, 1.5, 2.1, 2.6} at area ≈ 256).
    pub fn from_area_and_ratio(area: usize, ratio: f64) -> Self {
        assert!(area > 0, "area must be positive");
        assert!(ratio >= 1.0, "ratio is length/width >= 1");
        let width = ((area as f64) / ratio).sqrt().round().max(1.0) as usize;
        let length = area.div_ceil(width);
        LayerGeometry::new(width, length)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of RSG sites (the paper's *physical area*).
    pub fn area(&self) -> usize {
        self.rows * self.cols
    }

    /// `true` when `p` lies inside the layer.
    pub fn contains(&self, p: Position) -> bool {
        p.row < self.rows && p.col < self.cols
    }

    /// The fusion-coupled neighbourhood of `p` (topology-dependent),
    /// clipped to the layer.
    pub fn neighbors(&self, p: Position) -> Vec<Position> {
        let (buf, n) = self.neighbors_array(p);
        buf[..n].to_vec()
    }

    /// Allocation-free variant of [`LayerGeometry::neighbors`] for hot
    /// loops: returns a fixed buffer plus the valid count. Order matches
    /// `neighbors` exactly (routers rely on it for stable tie-breaking).
    pub fn neighbors_array(&self, p: Position) -> ([Position; MAX_NEIGHBORS], usize) {
        let mut out = [Position::new(0, 0); MAX_NEIGHBORS];
        let mut n = 0usize;
        let mut push = |r: isize, c: isize| {
            if r >= 0 && c >= 0 && (r as usize) < self.rows && (c as usize) < self.cols {
                out[n] = Position::new(r as usize, c as usize);
                n += 1;
            }
        };
        let (r, c) = (p.row as isize, p.col as isize);
        match self.topology {
            Topology::Orthogonal => {
                push(r - 1, c);
                push(r + 1, c);
                push(r, c - 1);
                push(r, c + 1);
            }
            Topology::Triangular => {
                push(r - 1, c);
                push(r + 1, c);
                push(r, c - 1);
                push(r, c + 1);
                push(r - 1, c + 1);
                push(r + 1, c - 1);
            }
            Topology::Hexagonal => {
                push(r, c - 1);
                push(r, c + 1);
                if (p.row + p.col) % 2 == 0 {
                    push(r - 1, c);
                } else {
                    push(r + 1, c);
                }
            }
        }
        (out, n)
    }

    /// A shortest coupled path from `a` to `b`, inclusive of both
    /// endpoints (used by shuffle-layer planning; BFS over the topology).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint lies outside the layer or, for the
    /// hexagonal topology, if the honeycomb is disconnected at size 1.
    pub fn path_between(&self, a: Position, b: Position) -> Vec<Position> {
        assert!(self.contains(a) && self.contains(b), "endpoints on layer");
        if a == b {
            return vec![a];
        }
        let mut prev: std::collections::HashMap<Position, Position> =
            std::collections::HashMap::new();
        let mut queue = std::collections::VecDeque::from([a]);
        prev.insert(a, a);
        while let Some(p) = queue.pop_front() {
            if p == b {
                let mut path = vec![b];
                let mut cur = b;
                while prev[&cur] != cur {
                    cur = prev[&cur];
                    path.push(cur);
                }
                path.reverse();
                return path;
            }
            for q in self.neighbors(p) {
                if let std::collections::hash_map::Entry::Vacant(e) = prev.entry(q) {
                    e.insert(p);
                    queue.push_back(q);
                }
            }
        }
        panic!("layer topology must be connected");
    }

    /// Row-major iterator over all positions.
    pub fn positions(&self) -> impl Iterator<Item = Position> + '_ {
        let cols = self.cols;
        (0..self.rows * self.cols).map(move |i| Position::new(i / cols, i % cols))
    }

    /// Row-major linear index of `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside the layer.
    pub fn index_of(&self, p: Position) -> usize {
        assert!(self.contains(p), "{p} outside {self}");
        p.row * self.cols + p.col
    }
}

impl fmt::Display for LayerGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// An *extended physical layer* (paper §3.1, Fig. 5b): `factor` consecutive
/// physical layers treated as one wide 2-D grid by keeping the boundary
/// temporal connections; every second sub-layer is mirrored so the
/// serpentine stays contiguous.
///
/// # Example
///
/// ```
/// use oneq_hardware::{ExtendedLayer, LayerGeometry, Position};
///
/// let ext = ExtendedLayer::new(LayerGeometry::new(13, 13), 3);
/// assert_eq!(ext.geometry().cols(), 39); // Fig. 14: a 13x39 grid
/// let (sub, p) = ext.to_physical(Position::new(2, 20));
/// assert_eq!(sub, 1);
/// assert!(p.col < 13);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtendedLayer {
    base: LayerGeometry,
    factor: usize,
}

impl ExtendedLayer {
    /// Combines `factor` consecutive layers of `base` geometry.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    pub fn new(base: LayerGeometry, factor: usize) -> Self {
        assert!(factor > 0, "extension factor must be positive");
        ExtendedLayer { base, factor }
    }

    /// The base (single-cycle) layer geometry.
    pub fn base(&self) -> LayerGeometry {
        self.base
    }

    /// Number of physical layers merged into this extended layer.
    pub fn factor(&self) -> usize {
        self.factor
    }

    /// The combined 2-D grid: same rows, `factor`× the columns, same
    /// coupling topology as the base layer.
    pub fn geometry(&self) -> LayerGeometry {
        LayerGeometry::new(self.base.rows(), self.base.cols() * self.factor)
            .with_topology(self.base.topology())
    }

    /// Maps an extended-grid position to `(sub_layer, physical position)`,
    /// mirroring odd sub-layers in the column direction (paper Fig. 5b).
    ///
    /// # Panics
    ///
    /// Panics if the position is outside the extended grid.
    pub fn to_physical(&self, p: Position) -> (usize, Position) {
        assert!(self.geometry().contains(p), "{p} outside extended layer");
        let sub = p.col / self.base.cols();
        let local = p.col % self.base.cols();
        let col = if sub % 2 == 1 {
            self.base.cols() - 1 - local
        } else {
            local
        };
        (sub, Position::new(p.row, col))
    }

    /// Inverse of [`ExtendedLayer::to_physical`].
    ///
    /// # Panics
    ///
    /// Panics if `sub >= factor` or the position is outside the base layer.
    pub fn from_physical(&self, sub: usize, p: Position) -> Position {
        assert!(sub < self.factor, "sub-layer out of range");
        assert!(self.base.contains(p), "{p} outside base layer");
        let local = if sub % 2 == 1 {
            self.base.cols() - 1 - p.col
        } else {
            p.col
        };
        Position::new(p.row, sub * self.base.cols() + local)
    }
}

impl fmt::Display for ExtendedLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(x{})", self.base, self.factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance() {
        assert_eq!(Position::new(1, 2).manhattan(Position::new(4, 0)), 5);
        assert_eq!(Position::new(3, 3).manhattan(Position::new(3, 3)), 0);
    }

    #[test]
    fn area_and_bounds() {
        let g = LayerGeometry::new(4, 5);
        assert_eq!(g.area(), 20);
        assert!(g.contains(Position::new(3, 4)));
        assert!(!g.contains(Position::new(4, 0)));
        assert!(!g.contains(Position::new(0, 5)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_rejected() {
        LayerGeometry::new(0, 5);
    }

    #[test]
    fn neighbor_counts() {
        let g = LayerGeometry::new(3, 3);
        assert_eq!(g.neighbors(Position::new(0, 0)).len(), 2);
        assert_eq!(g.neighbors(Position::new(0, 1)).len(), 3);
        assert_eq!(g.neighbors(Position::new(1, 1)).len(), 4);
    }

    #[test]
    fn positions_cover_grid() {
        let g = LayerGeometry::new(2, 3);
        let all: Vec<Position> = g.positions().collect();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], Position::new(0, 0));
        assert_eq!(all[5], Position::new(1, 2));
        assert_eq!(g.index_of(all[4]), 4);
    }

    #[test]
    fn ratio_variants_match_figure_13() {
        // Paper Fig. 13: 16x16 (1), 20x13 (1.5), 23x11 (2.1), 26x10 (2.6).
        let cases = [
            (1.0, (16, 16)),
            (1.5, (13, 20)),
            (2.1, (11, 24)),
            (2.6, (10, 26)),
        ];
        for (ratio, (rows, cols)) in cases {
            let g = LayerGeometry::from_area_and_ratio(256, ratio);
            assert_eq!(g.rows(), rows, "ratio {ratio}");
            // Allow one column of slack from rounding; area stays >= 256.
            assert!(g.cols().abs_diff(cols) <= 1, "ratio {ratio}: got {g}");
            assert!(g.area() >= 256);
        }
    }

    #[test]
    fn extended_layer_dimensions() {
        let ext = ExtendedLayer::new(LayerGeometry::new(13, 13), 3);
        let g = ext.geometry();
        assert_eq!((g.rows(), g.cols()), (13, 39));
        assert_eq!(ext.factor(), 3);
    }

    #[test]
    fn extended_mapping_roundtrip() {
        let ext = ExtendedLayer::new(LayerGeometry::new(4, 5), 3);
        for p in ext.geometry().positions() {
            let (sub, phys) = ext.to_physical(p);
            assert!(sub < 3);
            assert!(ext.base().contains(phys));
            assert_eq!(ext.from_physical(sub, phys), p);
        }
    }

    #[test]
    fn odd_sublayers_are_mirrored() {
        let ext = ExtendedLayer::new(LayerGeometry::new(2, 4), 2);
        // Column 4 is the first column of the mirrored sub-layer 1, which
        // maps to the *last* physical column so the boundary is contiguous.
        let (sub, phys) = ext.to_physical(Position::new(0, 4));
        assert_eq!(sub, 1);
        assert_eq!(phys, Position::new(0, 3));
    }

    #[test]
    fn triangular_topology_has_six_interior_neighbors() {
        let g = LayerGeometry::new(4, 4).with_topology(Topology::Triangular);
        assert_eq!(g.neighbors(Position::new(1, 1)).len(), 6);
        // Corner (0,0): E and S survive; NE and SW clip off-grid.
        assert_eq!(g.neighbors(Position::new(0, 0)).len(), 2);
        assert_eq!(g.topology(), Topology::Triangular);
    }

    #[test]
    fn hexagonal_topology_has_three_neighbors() {
        let g = LayerGeometry::new(4, 4).with_topology(Topology::Hexagonal);
        for p in g.positions() {
            assert!(g.neighbors(p).len() <= 3, "{p}");
        }
        // Interior parity: (1,1) even sum -> couples N; (1,2) odd -> S.
        assert!(g
            .neighbors(Position::new(1, 1))
            .contains(&Position::new(0, 1)));
        assert!(g
            .neighbors(Position::new(1, 2))
            .contains(&Position::new(2, 2)));
    }

    #[test]
    fn neighbors_are_symmetric_in_every_topology() {
        for topo in [
            Topology::Orthogonal,
            Topology::Triangular,
            Topology::Hexagonal,
        ] {
            let g = LayerGeometry::new(5, 6).with_topology(topo);
            for p in g.positions() {
                for q in g.neighbors(p) {
                    assert!(
                        g.neighbors(q).contains(&p),
                        "{topo:?}: {p} -> {q} not symmetric"
                    );
                }
            }
        }
    }

    #[test]
    fn path_between_follows_the_topology() {
        for topo in [
            Topology::Orthogonal,
            Topology::Triangular,
            Topology::Hexagonal,
        ] {
            let g = LayerGeometry::new(6, 6).with_topology(topo);
            let path = g.path_between(Position::new(0, 0), Position::new(5, 5));
            assert_eq!(path[0], Position::new(0, 0));
            assert_eq!(*path.last().unwrap(), Position::new(5, 5));
            for w in path.windows(2) {
                assert!(
                    g.neighbors(w[0]).contains(&w[1]),
                    "{topo:?}: step {} -> {} not coupled",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn triangular_paths_are_no_longer_than_orthogonal() {
        let ortho = LayerGeometry::new(8, 8);
        let tri = ortho.with_topology(Topology::Triangular);
        let (a, b) = (Position::new(0, 7), Position::new(7, 0));
        assert!(tri.path_between(a, b).len() <= ortho.path_between(a, b).len());
    }

    #[test]
    fn path_between_same_cell_is_singleton() {
        let g = LayerGeometry::new(3, 3);
        assert_eq!(
            g.path_between(Position::new(1, 1), Position::new(1, 1))
                .len(),
            1
        );
    }

    #[test]
    fn single_factor_extension_is_identity() {
        let ext = ExtendedLayer::new(LayerGeometry::new(3, 3), 1);
        for p in ext.geometry().positions() {
            assert_eq!(ext.to_physical(p), (0, p));
        }
    }
}
