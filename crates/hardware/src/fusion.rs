//! Fusion bookkeeping and the photon-loss/fidelity estimate.
//!
//! A fusion projects two photons (one from each resource state) onto an
//! entangled basis, merging an `m`-qubit and an `n`-qubit graph state into
//! an `(m + n - 2)`-qubit one (paper §2.1, Fig. 2). Fusions are the most
//! error-prone operation of the platform, and photons waiting in delay
//! lines accumulate loss — which is exactly why the compiler minimizes
//! both the fusion count and the physical depth (paper §3.2).

use std::fmt;

/// The routing class of a fusion (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FusionKind {
    /// Between resource states of neighbouring RSGs in the same cycle.
    Spatial,
    /// Between resource states of the same RSG across cycles (delay line).
    Temporal,
}

impl fmt::Display for FusionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FusionKind::Spatial => write!(f, "spatial"),
            FusionKind::Temporal => write!(f, "temporal"),
        }
    }
}

/// Size of the graph state produced by fusing an `m`- and an `n`-qubit
/// graph state: each fusion consumes the two measured photons.
///
/// # Example
///
/// ```
/// // Paper Fig. 2: two 3-qubit states fuse into a 4-qubit state.
/// assert_eq!(oneq_hardware::fusion::fused_size(3, 3), 4);
/// ```
pub fn fused_size(m: usize, n: usize) -> usize {
    (m + n).saturating_sub(2)
}

/// Running tally of fusions by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionTally {
    /// Spatial fusion count.
    pub spatial: usize,
    /// Temporal fusion count.
    pub temporal: usize,
}

impl FusionTally {
    /// An empty tally.
    pub fn new() -> Self {
        FusionTally::default()
    }

    /// Records one fusion.
    pub fn record(&mut self, kind: FusionKind) {
        match kind {
            FusionKind::Spatial => self.spatial += 1,
            FusionKind::Temporal => self.temporal += 1,
        }
    }

    /// Total fusions.
    pub fn total(&self) -> usize {
        self.spatial + self.temporal
    }

    /// Photons destroyed by the tallied fusions (two per fusion).
    pub fn photons_consumed(&self) -> usize {
        2 * self.total()
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: FusionTally) {
        self.spatial += other.spatial;
        self.temporal += other.temporal;
    }
}

impl fmt::Display for FusionTally {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} fusions ({} spatial, {} temporal)",
            self.total(),
            self.spatial,
            self.temporal
        )
    }
}

/// A simple multiplicative error model for compiled programs.
///
/// `fusion_fidelity` is the per-fusion process fidelity; `survival_per_cycle`
/// is the probability a photon survives one clock cycle in a delay line.
/// The estimate is deliberately coarse — the paper reports only depth and
/// fusion counts, and this model exists to let users rank compilations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorModel {
    /// Per-fusion fidelity in (0, 1].
    pub fusion_fidelity: f64,
    /// Per-cycle delay-line survival probability in (0, 1].
    pub survival_per_cycle: f64,
}

impl Default for ErrorModel {
    fn default() -> Self {
        // Loosely inspired by reported linear-optics numbers: fusions are
        // the dominant error source; delay-line loss is per-cycle.
        ErrorModel {
            fusion_fidelity: 0.99,
            survival_per_cycle: 0.999,
        }
    }
}

impl ErrorModel {
    /// Creates a model, validating ranges.
    ///
    /// # Panics
    ///
    /// Panics when a parameter is outside (0, 1].
    pub fn new(fusion_fidelity: f64, survival_per_cycle: f64) -> Self {
        assert!(
            fusion_fidelity > 0.0 && fusion_fidelity <= 1.0,
            "fusion fidelity must be in (0, 1]"
        );
        assert!(
            survival_per_cycle > 0.0 && survival_per_cycle <= 1.0,
            "survival must be in (0, 1]"
        );
        ErrorModel {
            fusion_fidelity,
            survival_per_cycle,
        }
    }

    /// Estimated program fidelity given a fusion count and the total
    /// photon-cycles spent in delay lines.
    pub fn estimate_fidelity(&self, fusions: usize, delay_photon_cycles: usize) -> f64 {
        self.fusion_fidelity.powi(fusions as i32)
            * self.survival_per_cycle.powi(delay_photon_cycles as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_size_arithmetic() {
        assert_eq!(fused_size(3, 3), 4);
        assert_eq!(fused_size(4, 3), 5);
        assert_eq!(fused_size(2, 2), 2);
        // Degenerate inputs saturate instead of underflowing.
        assert_eq!(fused_size(1, 0), 0);
    }

    #[test]
    fn fusing_grows_state_when_both_sides_exceed_two() {
        for m in 3..6 {
            for n in 3..6 {
                assert!(fused_size(m, n) > m.max(n));
            }
        }
    }

    #[test]
    fn tally_records_and_merges() {
        let mut t = FusionTally::new();
        t.record(FusionKind::Spatial);
        t.record(FusionKind::Spatial);
        t.record(FusionKind::Temporal);
        assert_eq!(t.total(), 3);
        assert_eq!(t.photons_consumed(), 6);
        let mut u = FusionTally::new();
        u.record(FusionKind::Temporal);
        t.merge(u);
        assert_eq!((t.spatial, t.temporal), (2, 2));
    }

    #[test]
    fn fidelity_decays_with_fusions() {
        let m = ErrorModel::default();
        let f1 = m.estimate_fidelity(10, 0);
        let f2 = m.estimate_fidelity(100, 0);
        assert!(f2 < f1);
        assert!(f1 <= 1.0 && f2 > 0.0);
    }

    #[test]
    fn fidelity_decays_with_delay() {
        let m = ErrorModel::default();
        assert!(m.estimate_fidelity(0, 100) < m.estimate_fidelity(0, 10));
        assert_eq!(m.estimate_fidelity(0, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "fusion fidelity")]
    fn invalid_fidelity_rejected() {
        ErrorModel::new(0.0, 0.5);
    }

    #[test]
    fn display_forms() {
        let mut t = FusionTally::new();
        t.record(FusionKind::Spatial);
        assert!(format!("{t}").contains("1 fusions"));
        assert_eq!(format!("{}", FusionKind::Temporal), "temporal");
    }
}
