//! # oneq-hardware
//!
//! Photonic hardware model for the OneQ compiler (ISCA'23 reproduction).
//!
//! Photonic one-way hardware (paper §3.1) consists of an array of
//! *resource-state generators* (RSGs) producing a fresh copy of a small
//! entangled state every clock cycle, routers that steer photons between
//! neighbouring RSG outputs (spatial routing) or across clock cycles via
//! delay lines (temporal routing), and fusion/measurement devices. This
//! crate models:
//!
//! * the resource-state shapes of the evaluation ([`ResourceKind`]:
//!   3-qubit line, 4-qubit line/star/ring, n-GHZ) and the node-synthesis
//!   cost model (paper §5),
//! * physical-layer geometry ([`LayerGeometry`], [`Position`]) including
//!   the rectangular aspect-ratio variants of Fig. 13 and the *extended
//!   physical layers* of Fig. 5(b) ([`ExtendedLayer`]),
//! * the extendable space-time coupling graph ([`CouplingGraph`]),
//! * fusion bookkeeping and a loss/fidelity estimate ([`fusion`]).
//!
//! # Example
//!
//! ```
//! use oneq_hardware::{LayerGeometry, ResourceKind};
//!
//! let layer = LayerGeometry::new(16, 16);
//! assert_eq!(layer.area(), 256);
//! // A degree-6 graph-state node takes 5 chained 3-qubit states (paper §5).
//! assert_eq!(ResourceKind::LINE3.chain_nodes(6), 5);
//! ```

#![warn(missing_docs)]

mod coupling;
pub mod fusion;
mod geometry;
mod grid;
mod resource;

pub use coupling::{CouplingGraph, SiteId};
pub use fusion::{ErrorModel, FusionKind, FusionTally};
pub use geometry::{ExtendedLayer, LayerGeometry, Position, Topology, MAX_NEIGHBORS};
pub use grid::{BfsScratch, CellGrid};
pub use resource::{respects_degree_budget, ResourceKind};
