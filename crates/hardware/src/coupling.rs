//! The extendable space-time coupling graph (paper §3.1, Fig. 5).
//!
//! Nodes are RSG emission events `(cycle, row, col)`; edges are fusion
//! supports: *spatial* between 4-neighbouring RSGs in the same cycle,
//! *temporal* between the same RSG across cycles up to the delay-line
//! limit. The compiler mostly works layer-by-layer on [`super::LayerGeometry`],
//! but this explicit graph backs the hardware-model tests, the examples
//! and the documentation of the abstraction itself.

use crate::geometry::{LayerGeometry, Position};
use oneq_graph::{Graph, NodeId};
use std::fmt;

/// Identifier of an RSG emission event in the coupling graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId {
    /// Clock cycle (physical-layer index).
    pub cycle: usize,
    /// Grid position within the layer.
    pub pos: Position,
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}{}", self.cycle, self.pos)
    }
}

/// A finite window of the space-time coupling graph.
///
/// # Example
///
/// ```
/// use oneq_hardware::{CouplingGraph, LayerGeometry};
///
/// // 2 cycles of a 2x2 array with delay 1.
/// let cg = CouplingGraph::new(LayerGeometry::new(2, 2), 2, 1);
/// assert_eq!(cg.site_count(), 8);
/// // 4 spatial edges per layer x 2 + 4 temporal edges.
/// assert_eq!(cg.graph().edge_count(), 12);
/// ```
#[derive(Debug, Clone)]
pub struct CouplingGraph {
    layer: LayerGeometry,
    cycles: usize,
    delay: usize,
    graph: Graph,
}

impl CouplingGraph {
    /// Builds the coupling graph for `cycles` layers of `layer` geometry
    /// with temporal edges spanning up to `delay` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `cycles == 0`.
    pub fn new(layer: LayerGeometry, cycles: usize, delay: usize) -> Self {
        assert!(cycles > 0, "at least one cycle is required");
        let area = layer.area();
        let mut graph = Graph::with_nodes(area * cycles);
        for t in 0..cycles {
            for p in layer.positions() {
                let a = NodeId::new(t * area + layer.index_of(p));
                // Spatial edges within the layer.
                for q in layer.neighbors(p) {
                    if q > p {
                        let b = NodeId::new(t * area + layer.index_of(q));
                        graph.add_edge(a, b).expect("grid edges are valid");
                    }
                }
                // Temporal edges to later cycles at the same site.
                for dt in 1..=delay {
                    if t + dt < cycles {
                        let b = NodeId::new((t + dt) * area + layer.index_of(p));
                        graph.add_edge(a, b).expect("temporal edges are valid");
                    }
                }
            }
        }
        CouplingGraph {
            layer,
            cycles,
            delay,
            graph,
        }
    }

    /// The per-cycle layer geometry.
    pub fn layer(&self) -> LayerGeometry {
        self.layer
    }

    /// Number of cycles in this window.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Delay-line reach in cycles.
    pub fn delay(&self) -> usize {
        self.delay
    }

    /// Total number of RSG emission events.
    pub fn site_count(&self) -> usize {
        self.graph.node_count()
    }

    /// The underlying undirected graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Translates a site to its graph node.
    ///
    /// # Panics
    ///
    /// Panics if the site is outside this window.
    pub fn node_of(&self, site: SiteId) -> NodeId {
        assert!(site.cycle < self.cycles, "cycle out of range");
        NodeId::new(site.cycle * self.layer.area() + self.layer.index_of(site.pos))
    }

    /// Translates a graph node back to its site.
    ///
    /// # Panics
    ///
    /// Panics if the node is not part of this graph.
    pub fn site_of(&self, node: NodeId) -> SiteId {
        assert!(node.index() < self.site_count(), "node out of range");
        let area = self.layer.area();
        let cycle = node.index() / area;
        let rem = node.index() % area;
        SiteId {
            cycle,
            pos: Position::new(rem / self.layer.cols(), rem % self.layer.cols()),
        }
    }

    /// `true` when `a` and `b` can fuse: spatial neighbours in the same
    /// cycle, or the same RSG within the delay window.
    pub fn can_fuse(&self, a: SiteId, b: SiteId) -> bool {
        if a.cycle == b.cycle {
            a.pos.manhattan(b.pos) == 1
        } else {
            a.pos == b.pos && a.cycle.abs_diff(b.cycle) <= self.delay
        }
    }
}

impl fmt::Display for CouplingGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CouplingGraph({} x {} cycles, delay {})",
            self.layer, self.cycles, self.delay
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_node_roundtrip() {
        let cg = CouplingGraph::new(LayerGeometry::new(3, 4), 5, 2);
        for t in 0..5 {
            for p in cg.layer().positions() {
                let site = SiteId { cycle: t, pos: p };
                assert_eq!(cg.site_of(cg.node_of(site)), site);
            }
        }
    }

    #[test]
    fn spatial_fusion_rules() {
        let cg = CouplingGraph::new(LayerGeometry::new(3, 3), 2, 1);
        let a = SiteId {
            cycle: 0,
            pos: Position::new(1, 1),
        };
        let b = SiteId {
            cycle: 0,
            pos: Position::new(1, 2),
        };
        let c = SiteId {
            cycle: 0,
            pos: Position::new(2, 2),
        };
        assert!(cg.can_fuse(a, b));
        assert!(!cg.can_fuse(a, c)); // diagonal
    }

    #[test]
    fn temporal_fusion_respects_delay() {
        let cg = CouplingGraph::new(LayerGeometry::new(2, 2), 4, 2);
        let p = Position::new(0, 1);
        let s = |cycle| SiteId { cycle, pos: p };
        assert!(cg.can_fuse(s(0), s(1)));
        assert!(cg.can_fuse(s(0), s(2)));
        assert!(!cg.can_fuse(s(0), s(3))); // beyond delay
        let q = SiteId {
            cycle: 1,
            pos: Position::new(0, 0),
        };
        assert!(!cg.can_fuse(s(0), q)); // different site across time
    }

    #[test]
    fn edge_counts_match_formula() {
        let layer = LayerGeometry::new(3, 3);
        let cg = CouplingGraph::new(layer, 3, 1);
        // Spatial: 12 per layer x 3; temporal: 9 sites x 2 adjacent pairs.
        assert_eq!(cg.graph().edge_count(), 12 * 3 + 9 * 2);
    }

    #[test]
    fn graph_edges_match_can_fuse() {
        let cg = CouplingGraph::new(LayerGeometry::new(2, 3), 3, 2);
        for e in cg.graph().sorted_edges() {
            let (a, b) = (cg.site_of(e.a()), cg.site_of(e.b()));
            assert!(cg.can_fuse(a, b), "edge {a}-{b} violates fusion rules");
        }
    }
}
