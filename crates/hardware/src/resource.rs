//! Resource-state shapes and the node-synthesis cost model.

use oneq_graph::{Graph, NodeId};
use std::fmt;

/// The entangled state an RSG emits every clock cycle.
///
/// The paper evaluates 3-qubit lines (the default, matching the GHZ states
/// of ballistic schemes \[29\]) and 4-qubit line/star/ring states
/// (Fig. 12). `Ghz(n)` generalizes the star shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// A path of `n` qubits.
    Line(usize),
    /// A star: one center qubit attached to `n - 1` leaves (GHZ-class).
    Star(usize),
    /// A ring (cycle) of `n` qubits.
    Ring(usize),
}

impl ResourceKind {
    /// The paper's default 3-qubit linear resource state.
    pub const LINE3: ResourceKind = ResourceKind::Line(3);
    /// 4-qubit linear resource state.
    pub const LINE4: ResourceKind = ResourceKind::Line(4);
    /// 4-qubit star resource state.
    pub const STAR4: ResourceKind = ResourceKind::Star(4);
    /// 4-qubit ring resource state.
    pub const RING4: ResourceKind = ResourceKind::Ring(4);

    /// Number of photons in one resource state.
    pub fn qubit_count(&self) -> usize {
        match *self {
            ResourceKind::Line(n) | ResourceKind::Star(n) | ResourceKind::Ring(n) => n,
        }
    }

    /// Maximum qubit degree inside the resource state.
    pub fn max_degree(&self) -> usize {
        match *self {
            ResourceKind::Line(n) => match n {
                0 | 1 => 0,
                2 => 1,
                _ => 2,
            },
            ResourceKind::Star(n) => n.saturating_sub(1),
            ResourceKind::Ring(_) => 2,
        }
    }

    /// The entanglement graph of the resource state.
    ///
    /// # Panics
    ///
    /// Panics for rings with fewer than 3 qubits.
    pub fn graph(&self) -> Graph {
        match *self {
            ResourceKind::Line(n) => oneq_graph::generators::path(n),
            ResourceKind::Star(n) => oneq_graph::generators::star(n),
            ResourceKind::Ring(n) => oneq_graph::generators::cycle(n),
        }
    }

    /// Number of resource states chained to synthesize one graph-state
    /// node of the given `degree` (paper §5).
    ///
    /// For 3-qubit states each *degree-increment* fusion adds one free
    /// slot, so a degree-d node needs `d - 1` states (paper Fig. 8). For
    /// richer states, chaining the max-degree qubits merges `k` states
    /// into a node of degree `k·(m-2) + 2`, and rings are first tailored
    /// to lines by a Z-measurement (paper §5), giving the generic
    /// `d/m + 1` scaling the paper quotes.
    pub fn chain_nodes(&self, degree: usize) -> usize {
        if degree <= 1 {
            return 1;
        }
        match self.effective() {
            ResourceKind::Line(3) => degree.saturating_sub(1).max(1),
            kind => {
                let m = kind.max_degree().max(2);
                degree / m + 1
            }
        }
    }

    /// The shape actually used for synthesis: rings are tailored into
    /// lines one qubit shorter by removing a qubit with a Z-measurement
    /// (paper §5).
    pub fn effective(&self) -> ResourceKind {
        match *self {
            ResourceKind::Ring(n) => ResourceKind::Line(n.saturating_sub(1)),
            other => other,
        }
    }

    /// Photons sacrificed when tailoring one resource state (ring → line).
    pub fn tailoring_cost(&self) -> usize {
        match *self {
            ResourceKind::Ring(_) => 1,
            _ => 0,
        }
    }

    /// Free qubits available for fusions once a resource state is used as
    /// a routing waypoint: two photons are consumed by the through-path,
    /// the rest are removed by Z-measurements (paper §6: for small states
    /// each location supports at most one routing path).
    pub fn routing_capacity(&self) -> usize {
        let q = self.effective().qubit_count();
        if q >= 2 {
            1
        } else {
            0
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ResourceKind::Line(n) => write!(f, "{n}-line"),
            ResourceKind::Star(n) => write!(f, "{n}-star"),
            ResourceKind::Ring(n) => write!(f, "{n}-ring"),
        }
    }
}

/// Checks that `graph` (a candidate synthesized structure) respects the
/// degree budget of the resource kind: every node of the fusion graph must
/// host at most `qubit_count` fusions.
pub fn respects_degree_budget(kind: ResourceKind, fusion_graph: &Graph) -> bool {
    let budget = kind.effective().qubit_count();
    fusion_graph
        .nodes()
        .all(|n: NodeId| fusion_graph.degree(n) <= budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_counts() {
        assert_eq!(ResourceKind::LINE3.qubit_count(), 3);
        assert_eq!(ResourceKind::LINE4.qubit_count(), 4);
        assert_eq!(ResourceKind::STAR4.qubit_count(), 4);
        assert_eq!(ResourceKind::RING4.qubit_count(), 4);
    }

    #[test]
    fn max_degrees() {
        assert_eq!(ResourceKind::LINE3.max_degree(), 2);
        assert_eq!(ResourceKind::LINE4.max_degree(), 2);
        assert_eq!(ResourceKind::STAR4.max_degree(), 3);
        assert_eq!(ResourceKind::RING4.max_degree(), 2);
        assert_eq!(ResourceKind::Line(2).max_degree(), 1);
        assert_eq!(ResourceKind::Star(5).max_degree(), 4);
    }

    #[test]
    fn graphs_have_right_shape() {
        assert_eq!(ResourceKind::LINE3.graph().edge_count(), 2);
        assert_eq!(ResourceKind::STAR4.graph().edge_count(), 3);
        assert_eq!(ResourceKind::RING4.graph().edge_count(), 4);
    }

    #[test]
    fn three_qubit_chain_is_degree_minus_one() {
        // Paper Fig. 8: a degree-4 node needs 3 resource states.
        assert_eq!(ResourceKind::LINE3.chain_nodes(4), 3);
        assert_eq!(ResourceKind::LINE3.chain_nodes(2), 1);
        assert_eq!(ResourceKind::LINE3.chain_nodes(1), 1);
        assert_eq!(ResourceKind::LINE3.chain_nodes(6), 5);
    }

    #[test]
    fn star_chain_uses_generic_formula() {
        // m = 3 for 4-star: d/m + 1.
        assert_eq!(ResourceKind::STAR4.chain_nodes(4), 2);
        assert_eq!(ResourceKind::STAR4.chain_nodes(3), 2);
        assert_eq!(ResourceKind::STAR4.chain_nodes(9), 4);
        assert_eq!(ResourceKind::STAR4.chain_nodes(1), 1);
    }

    #[test]
    fn four_line_beats_three_line_on_high_degree() {
        for d in 4..12 {
            assert!(
                ResourceKind::LINE4.chain_nodes(d) <= ResourceKind::LINE3.chain_nodes(d),
                "4-line should need no more states than 3-line at degree {d}"
            );
        }
    }

    #[test]
    fn ring_is_tailored_to_shorter_line() {
        assert_eq!(ResourceKind::RING4.effective(), ResourceKind::Line(3));
        assert_eq!(ResourceKind::RING4.tailoring_cost(), 1);
        assert_eq!(ResourceKind::LINE3.tailoring_cost(), 0);
        // Tailored to a 3-line, the ring inherits the d-1 law.
        assert_eq!(ResourceKind::RING4.chain_nodes(5), 4);
    }

    #[test]
    fn routing_capacity_is_one_for_small_states() {
        assert_eq!(ResourceKind::LINE3.routing_capacity(), 1);
        assert_eq!(ResourceKind::RING4.routing_capacity(), 1);
    }

    #[test]
    fn degree_budget_check() {
        let ok = oneq_graph::generators::path(4);
        assert!(respects_degree_budget(ResourceKind::LINE3, &ok));
        let hub = oneq_graph::generators::star(6); // center degree 5 > 3
        assert!(!respects_degree_budget(ResourceKind::LINE3, &hub));
    }

    #[test]
    fn display_names_match_figure_12_labels() {
        assert_eq!(ResourceKind::LINE3.to_string(), "3-line");
        assert_eq!(ResourceKind::LINE4.to_string(), "4-line");
        assert_eq!(ResourceKind::STAR4.to_string(), "4-star");
        assert_eq!(ResourceKind::RING4.to_string(), "4-ring");
    }
}
