//! End-to-end semantics check: translate a circuit to a measurement
//! pattern, *execute* the pattern (with live feed-forward) on the dense
//! simulator, and compare the result with the circuit-model state.
//!
//! ```bash
//! cargo run --release -p oneq --example verify_pattern
//! ```

use oneq_circuit::Circuit;
use oneq_mbqc::{flow, translate};
use oneq_sim::{pattern_sim, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut circuit = Circuit::new(3);
    circuit
        .h(0)
        .cnot(0, 1)
        .t(1)
        .cnot(1, 2)
        .rz(2, 0.7)
        .h(2)
        .cz(0, 2);

    let pattern = translate::from_circuit(&circuit);
    let stats = flow::stats(&pattern);
    println!(
        "pattern: {} qubits, {} entangling edges, {} adaptive measurements, {} layers",
        pattern.node_count(),
        pattern.edge_count(),
        stats.adaptive,
        stats.layers
    );

    let reference = StateVector::run_circuit(&circuit);
    let mut agree = 0;
    let trials = 20;
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(seed);
        let run = pattern_sim::run(&pattern, &mut rng);
        if run.state.approx_eq_up_to_phase(&reference, 1e-9) {
            agree += 1;
        }
    }
    println!("{agree}/{trials} random measurement branches reproduced the circuit state");
    assert_eq!(
        agree, trials,
        "pattern must equal the circuit on every branch"
    );
    println!("translation verified: measurement pattern == circuit unitary");
}
