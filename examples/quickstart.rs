//! Quickstart: compile a circuit for a photonic one-way machine.
//!
//! ```bash
//! cargo run --release -p oneq --example quickstart
//! ```

use oneq::{Compiler, CompilerOptions};
use oneq_circuit::Circuit;
use oneq_hardware::LayerGeometry;

fn main() {
    // 1. Write a circuit with the builder API.
    let mut circuit = Circuit::new(3);
    circuit.h(0).cnot(0, 1).cnot(1, 2).t(2).h(2);

    // 2. Describe the hardware: an 8x8 array of resource-state generators
    //    emitting 3-qubit line states every clock cycle.
    let options = CompilerOptions::new(LayerGeometry::new(8, 8));

    // 3. Compile. The pipeline translates the circuit to a measurement
    //    pattern, partitions the graph state, synthesizes a fusion graph
    //    and maps it onto the RSG grid.
    let program = Compiler::new(options).compile(&circuit);

    println!(
        "circuit: {} gates on {} qubits",
        circuit.gate_count(),
        circuit.n_qubits()
    );
    println!(
        "graph state: {} nodes, {} edges, {} dependency layers",
        program.stats.graph_state_nodes,
        program.stats.graph_state_edges,
        program.stats.dependency_layers
    );
    println!(
        "compiled: physical depth = {} layers, fusions = {}",
        program.depth, program.fusions
    );
    println!("\nfirst layer layout:");
    print!("{}", oneq::viz::render_program(&program));
}
