//! Reproduces the **Figure 11** visualizations: in-layer mappings of the
//! fusion graphs of an 8-qubit BV with secret `11111111` (a) and a
//! 3-qubit QFT (b). Complete fusion nodes render as `o`, incomplete ones
//! as `x`, auxiliary routing states as `+`.
//!
//! ```bash
//! cargo run --release -p oneq --example mapping_viz
//! ```

use oneq::fusion_graph;
use oneq::mapping::{map_graph, MappingOptions};
use oneq::viz;
use oneq_circuit::benchmarks;
use oneq_hardware::{LayerGeometry, ResourceKind};
use oneq_mbqc::translate;

fn show(label: &str, circuit: &oneq_circuit::Circuit, side: usize) {
    let pattern = translate::from_circuit(circuit);
    let graph = pattern.graph();
    let degrees: Vec<usize> = graph.nodes().map(|n| graph.degree(n)).collect();
    let fg = fusion_graph::generate(graph, &degrees, ResourceKind::LINE3);
    let result = map_graph(
        fg.graph(),
        LayerGeometry::square(side),
        &MappingOptions::default(),
    );
    println!(
        "{label}: graph state {} nodes -> fusion graph {} nodes, {} fusions",
        graph.node_count(),
        fg.node_count(),
        result.total_fusions()
    );
    print!("{}", viz::render_mapping(&result));
    println!();
}

fn main() {
    // Fig. 11(a): 8-qubit BV, secret all ones.
    let bv = benchmarks::bv(&[true; 8]);
    show("BV-8 '11111111'", &bv, 12);

    // Fig. 11(b): 3-qubit QFT.
    let qft = benchmarks::qft(3);
    show("QFT-3", &qft, 12);
}
