//! Reproduces the **Figure 14** setup: mapping a 16-qubit QFT onto an
//! extended physical layer of 13x39 built from three consecutive 13x13
//! physical layers, and printing one slice of the resulting layout.
//!
//! ```bash
//! cargo run --release -p oneq --example extended_layer
//! ```

use oneq::{viz, Compiler, CompilerOptions};
use oneq_circuit::benchmarks;
use oneq_hardware::{ExtendedLayer, LayerGeometry, Position};

fn main() {
    let base = LayerGeometry::new(13, 13);
    let ext = ExtendedLayer::new(base, 3);
    println!("extended physical layer: {} (grid {})", ext, ext.geometry());

    let circuit = benchmarks::qft(16);
    let options = CompilerOptions::new(base).with_extension(3);
    let program = Compiler::new(options).compile(&circuit);
    println!(
        "QFT-16 on extended layers: depth={} physical layers, fusions={}",
        program.depth, program.fusions
    );

    // Show the first extended layout (a 13x39 slice like the paper's
    // Fig. 14) and where one of its cells lands physically.
    if let Some(layout) = program.layouts.first() {
        println!("\nfirst extended layout ({}):", layout.geometry());
        print!("{}", viz::render_layout(layout, &Default::default()));
        let probe = Position::new(6, 20);
        let (sub, phys) = ext.to_physical(probe);
        println!(
            "\nextended cell {probe} is physical layer offset {sub}, site {phys} \
             (odd sub-layers are mirrored, paper Fig. 5b)"
        );
    }
}
