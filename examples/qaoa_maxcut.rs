//! QAOA maxcut workload: compile a problem-graph-driven circuit, compare
//! against the cluster-state baseline, and estimate program fidelity with
//! the hardware error model.
//!
//! ```bash
//! cargo run --release -p oneq --example qaoa_maxcut
//! ```

use oneq::{Compiler, CompilerOptions};
use oneq_circuit::benchmarks;
use oneq_hardware::{ErrorModel, LayerGeometry, ResourceKind};

fn main() {
    // Maxcut instance: a 8-node ring plus two chords.
    let edges = [
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 4),
        (4, 5),
        (5, 6),
        (6, 7),
        (7, 0),
        (0, 4),
        (2, 6),
    ];
    let circuit = benchmarks::qaoa_maxcut(8, &edges, 0.8, 0.4);

    // Baseline: the basic cluster-state interpreter on the same hardware.
    let baseline = oneq_baseline::evaluate(&circuit, ResourceKind::LINE3);
    println!("{baseline}");

    // OneQ on the same physical area.
    let geometry = LayerGeometry::square(baseline.physical_side);
    let program = Compiler::new(CompilerOptions::new(geometry)).compile(&circuit);
    println!(
        "oneq:     depth={}, fusions={} ({} partitions)",
        program.depth, program.fusions, program.stats.partitions
    );
    println!(
        "improvement: depth {:.0}x, fusions {:.0}x",
        baseline.depth as f64 / program.depth as f64,
        baseline.fusions as f64 / program.fusions as f64
    );

    // Fidelity estimate: fusions dominate; photons idle one cycle per
    // layer of depth on average in this coarse model.
    let model = ErrorModel::default();
    let ours = model.estimate_fidelity(program.fusions, program.depth);
    let base = model.estimate_fidelity(baseline.fusions, baseline.depth);
    println!(
        "estimated fidelity: oneq {:.3} vs baseline {:.3e}",
        ours, base
    );
}
