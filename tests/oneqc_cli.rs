//! CLI-contract tests for the `oneqc` batch driver, exercising the real
//! binary. Exit codes are part of the tool's interface: 0 = all compiled,
//! 1 = some circuits failed, 2 = usage error, 3 = input paths missing or
//! empty of `.qasm` files.

use std::path::PathBuf;
use std::process::Command;

fn oneqc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_oneqc"))
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oneqc-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn nonexistent_path_exits_3_with_targeted_error() {
    let output = oneqc()
        .arg("/definitely/not/a/real/path.qasm")
        .output()
        .expect("run oneqc");
    assert_eq!(output.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("no such file or directory: /definitely/not/a/real/path.qasm"),
        "stderr names the missing path: {stderr}"
    );
    assert!(output.stdout.is_empty(), "no records on a failed scan");
}

#[test]
fn directory_without_qasm_files_exits_3_with_targeted_error() {
    let dir = tempdir("empty");
    std::fs::write(dir.join("readme.txt"), "not a circuit").unwrap();
    let output = oneqc().arg(&dir).output().expect("run oneqc");
    assert_eq!(output.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("no .qasm files found"),
        "stderr explains the empty scan: {stderr}"
    );
    assert!(
        stderr.contains(&dir.display().to_string()),
        "stderr names the scanned path: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn usage_errors_still_exit_2() {
    let output = oneqc()
        .arg("--side")
        .arg("x")
        .arg("f.qasm")
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(2));
    let output = oneqc().output().unwrap();
    assert_eq!(
        output.status.code(),
        Some(2),
        "no paths at all is a usage error"
    );
}

#[test]
fn compile_failures_exit_1_but_good_corpora_exit_0() {
    let dir = tempdir("mixed");
    std::fs::write(
        dir.join("good.qasm"),
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0], q[1];\n",
    )
    .unwrap();
    let output = oneqc().arg(&dir).output().unwrap();
    assert_eq!(output.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("\"status\": \"ok\""));

    std::fs::write(dir.join("bad.qasm"), "OPENQASM 2.0;\nnope;\n").unwrap();
    let output = oneqc().arg(&dir).output().unwrap();
    assert_eq!(
        output.status.code(),
        Some(1),
        "a failing circuit flips the exit code"
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("\"status\": \"error\""),
        "failed file still gets a record"
    );
    assert!(
        stdout.contains("\"status\": \"ok\""),
        "good file still compiles"
    );
    std::fs::remove_dir_all(&dir).ok();
}
