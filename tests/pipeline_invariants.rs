//! Structural invariants of the compilation pipeline, checked across the
//! crate boundaries the stages communicate over.

use oneq::fusion_graph;
use oneq::mapping::{map_graph, MappingOptions};
use oneq::partition::{partition, PartitionOptions};
use oneq_bench::{BenchKind, SEED};
use oneq_graph::{planarity, NodeId};
use oneq_hardware::{LayerGeometry, ResourceKind};
use oneq_mbqc::translate;
use std::collections::HashSet;

#[test]
fn partitions_cover_nodes_and_edges_exactly() {
    for kind in BenchKind::ALL {
        let pattern = translate::from_circuit(&kind.circuit(9, SEED));
        let result = partition(&pattern, &PartitionOptions::default());
        let mut nodes = HashSet::new();
        let mut edge_total = 0;
        for p in &result.partitions {
            for &g in &p.global_nodes {
                assert!(nodes.insert(g), "{}: duplicated node {g}", kind.name());
            }
            edge_total += p.subgraph.edge_count();
        }
        assert_eq!(nodes.len(), pattern.node_count(), "{}", kind.name());
        assert_eq!(
            edge_total + result.cross_edges.len(),
            pattern.edge_count(),
            "{}: edges must be partition-internal or cross",
            kind.name()
        );
    }
}

#[test]
fn partition_subgraphs_are_planar_under_enforcement() {
    for kind in BenchKind::ALL {
        let pattern = translate::from_circuit(&kind.circuit(9, SEED));
        let result = partition(&pattern, &PartitionOptions::default());
        for (i, p) in result.partitions.iter().enumerate() {
            assert!(
                planarity::is_planar(&p.subgraph),
                "{} partition {i} must be planar",
                kind.name()
            );
        }
    }
}

#[test]
fn fusion_graphs_of_planar_partitions_stay_planar() {
    for kind in BenchKind::ALL {
        let pattern = translate::from_circuit(&kind.circuit(9, SEED));
        let result = partition(&pattern, &PartitionOptions::default());
        for p in &result.partitions {
            let fg = fusion_graph::generate(&p.subgraph, &p.full_degree, ResourceKind::LINE3);
            assert!(
                planarity::is_planar(fg.graph()),
                "{}: planarity must be preserved by synthesis (paper Fig. 9)",
                kind.name()
            );
        }
    }
}

#[test]
fn fusion_nodes_respect_photon_budget() {
    for kind in BenchKind::ALL {
        let pattern = translate::from_circuit(&kind.circuit(9, SEED));
        let result = partition(&pattern, &PartitionOptions::default());
        for p in &result.partitions {
            for resource in [ResourceKind::LINE3, ResourceKind::STAR4] {
                let fg = fusion_graph::generate(&p.subgraph, &p.full_degree, resource);
                let budget = resource.effective().qubit_count();
                for n in fg.graph().nodes() {
                    assert!(
                        fg.graph().degree(n) <= budget,
                        "{}: node exceeds {resource} photon budget",
                        kind.name()
                    );
                }
            }
        }
    }
}

#[test]
fn mapping_places_every_fusion_node_once() {
    let pattern = translate::from_circuit(&BenchKind::Qft.circuit(9, SEED));
    let result = partition(&pattern, &PartitionOptions::default());
    for p in &result.partitions {
        let fg = fusion_graph::generate(&p.subgraph, &p.full_degree, ResourceKind::LINE3);
        let mapped = map_graph(
            fg.graph(),
            LayerGeometry::new(12, 12),
            &MappingOptions::default(),
        );
        assert_eq!(mapped.placement.len(), fg.node_count());
        // No two nodes share a cell on the same layer.
        let mut seen: HashSet<(usize, oneq_hardware::Position)> = HashSet::new();
        for &slot in mapped.placement.values() {
            assert!(seen.insert(slot), "two nodes share cell {slot:?}");
        }
    }
}

#[test]
fn mapping_fusion_count_lower_bound() {
    // Each fusion-graph edge costs at least one fusion; routing/shuffling
    // only add to that.
    let pattern = translate::from_circuit(&BenchKind::Qaoa.circuit(9, SEED));
    let result = partition(&pattern, &PartitionOptions::default());
    for p in &result.partitions {
        let fg = fusion_graph::generate(&p.subgraph, &p.full_degree, ResourceKind::LINE3);
        let mapped = map_graph(
            fg.graph(),
            LayerGeometry::new(12, 12),
            &MappingOptions::default(),
        );
        assert!(mapped.total_fusions() >= fg.fusion_count());
    }
}

#[test]
fn chain_lengths_match_full_degree() {
    let pattern = translate::from_circuit(&BenchKind::Bv.circuit(16, SEED));
    let result = partition(&pattern, &PartitionOptions::default());
    for p in &result.partitions {
        let fg = fusion_graph::generate(&p.subgraph, &p.full_degree, ResourceKind::LINE3);
        for (local, &d) in p.full_degree.iter().enumerate() {
            let expected = ResourceKind::LINE3.chain_nodes(d).max(1);
            assert!(
                fg.chain_length(local) >= expected.min(fg.chain_length(local)),
                "chain at least the paper's count"
            );
            if d >= 2 {
                assert_eq!(fg.chain_length(local), d - 1, "3-qubit law (paper Fig. 8)");
            }
        }
    }
}

#[test]
fn cross_edges_reference_real_nodes() {
    let pattern = translate::from_circuit(&BenchKind::Rca.circuit(8, SEED));
    let result = partition(&pattern, &PartitionOptions::default());
    let all: HashSet<NodeId> = pattern.nodes().collect();
    for &(u, v) in &result.cross_edges {
        assert!(all.contains(&u) && all.contains(&v));
        assert!(pattern.graph().has_edge(u, v));
    }
}
