//! Fixture-parity gate for the QASM frontend.
//!
//! The `.qasm` files under `tests/fixtures/qasm/` are exports of the
//! built-in paper-benchmark constructors (written by the
//! `gen_qasm_fixtures` bin). This suite pins two properties:
//!
//! 1. **No drift** — every fixture on disk is byte-identical to a fresh
//!    render from its constructor (regenerate with the bin if this fails).
//! 2. **Parity** — parsing a fixture yields a bit-identical gate list, and
//!    compiling it on the PR 2 determinism geometry (the Table 2 square
//!    layer) produces bit-identical metrics to compiling the constructor
//!    directly.

use oneq::{Compiler, CompilerOptions};
use oneq_bench::{qasm_fixture_dir, qasm_fixtures, render_qasm_fixture};
use oneq_frontend::parse_circuit;
use oneq_hardware::{LayerGeometry, ResourceKind};

fn read_fixture(name: &str) -> String {
    let path = qasm_fixture_dir().join(format!("{name}.qasm"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run `cargo run -p oneq-bench --bin gen_qasm_fixtures`",
            path.display()
        )
    })
}

#[test]
fn fixtures_on_disk_match_their_constructors() {
    for (name, circuit) in qasm_fixtures() {
        assert_eq!(
            read_fixture(name),
            render_qasm_fixture(name, &circuit),
            "{name}.qasm drifted; regenerate with \
             `cargo run -p oneq-bench --bin gen_qasm_fixtures`"
        );
    }
}

#[test]
fn fixtures_parse_to_bit_identical_gate_lists() {
    for (name, circuit) in qasm_fixtures() {
        let parsed = parse_circuit(&read_fixture(name))
            .unwrap_or_else(|e| panic!("{name}.qasm must parse:\n{e}"));
        assert_eq!(parsed.n_qubits(), circuit.n_qubits(), "{name}: width");
        assert_eq!(parsed.gates(), circuit.gates(), "{name}: gate list");
    }
}

/// Every fixture compiles to the same metrics as its constructor on the
/// determinism-gate geometry (square side from the baseline's physical
/// area, 3-qubit line resources) — the acceptance criterion for `oneqc`.
#[test]
fn fixtures_compile_to_identical_metrics() {
    for (name, circuit) in qasm_fixtures() {
        let parsed = parse_circuit(&read_fixture(name))
            .unwrap_or_else(|e| panic!("{name}.qasm must parse:\n{e}"));
        let side = oneq_baseline::physical_side(circuit.n_qubits(), ResourceKind::LINE3);
        let options = CompilerOptions::new(LayerGeometry::square(side));
        let from_qasm = Compiler::new(options).compile(&parsed);
        let from_ctor = Compiler::new(options).compile(&circuit);
        assert_eq!(from_qasm.depth, from_ctor.depth, "{name}: depth");
        assert_eq!(from_qasm.fusions, from_ctor.fusions, "{name}: #fusions");
        assert_eq!(from_qasm.stats, from_ctor.stats, "{name}: stage stats");
    }
}
