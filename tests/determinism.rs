//! Determinism regression gate (PR 2).
//!
//! The mapping hot path used to iterate hashed cell maps, so two compiles
//! of the same circuit could produce different layouts and different
//! reported metrics. The rebuild on flat dense grids fixes that bug class
//! at the root; this suite pins the guarantee: compiling any paper
//! benchmark twice with identical [`CompilerOptions`] yields bit-identical
//! `StageStats`, depth, #fusions, and layouts. CI enforces the same
//! property end to end by running the `table2` binary twice and diffing
//! the outputs.

use oneq::{CompiledProgram, Compiler, CompilerOptions};
use oneq_bench::{BenchKind, SEED};
use oneq_hardware::{LayerGeometry, ResourceKind};

fn assert_identical(a: &CompiledProgram, b: &CompiledProgram, label: &str) {
    assert_eq!(
        a.stats, b.stats,
        "{label}: StageStats must be bit-identical"
    );
    assert_eq!(a.depth, b.depth, "{label}: depth");
    assert_eq!(a.fusions, b.fusions, "{label}: #fusions");
    assert_eq!(a.layouts.len(), b.layouts.len(), "{label}: layout count");
    for (i, (la, lb)) in a.layouts.iter().zip(&b.layouts).enumerate() {
        assert_eq!(
            la.placed_nodes(),
            lb.placed_nodes(),
            "{label}: layer {i} placements"
        );
        let cells_a: Vec<_> = la.grid().iter().map(|(p, &c)| (p, c)).collect();
        let cells_b: Vec<_> = lb.grid().iter().map(|(p, &c)| (p, c)).collect();
        assert_eq!(cells_a, cells_b, "{label}: layer {i} cells");
    }
}

/// Every paper benchmark (smallest Table 2 size, to stay fast in debug
/// builds) compiles to the same program twice on its Table 2 geometry.
#[test]
fn paper_benchmarks_compile_deterministically() {
    for kind in BenchKind::ALL {
        let n = kind.paper_sizes()[0];
        let circuit = kind.circuit(n, SEED);
        let side = oneq_baseline::physical_side(n, ResourceKind::LINE3);
        let options = CompilerOptions::new(LayerGeometry::square(side));
        let a = Compiler::new(options).compile(&circuit);
        let b = Compiler::new(options).compile(&circuit);
        assert_identical(&a, &b, &format!("{}-{n}", kind.name()));
    }
}

/// BV-100 — the largest paper benchmark — stays deterministic too (it is
/// cheap to compile, so it can ride in debug test runs).
#[test]
fn largest_benchmark_is_deterministic() {
    let circuit = BenchKind::Bv.circuit(100, SEED);
    let side = oneq_baseline::physical_side(100, ResourceKind::LINE3);
    let options = CompilerOptions::new(LayerGeometry::square(side));
    let a = Compiler::new(options).compile(&circuit);
    let b = Compiler::new(options).compile(&circuit);
    assert_identical(&a, &b, "BV-100");
}

/// Non-default geometry knobs (rectangular layers, extension factors,
/// non-orthogonal coupling) do not break the guarantee.
#[test]
fn geometry_variants_are_deterministic() {
    use oneq_hardware::Topology;
    let circuit = BenchKind::Qaoa.circuit(16, SEED);
    let configs = [
        CompilerOptions::new(LayerGeometry::from_area_and_ratio(256, 1.5)),
        CompilerOptions::new(LayerGeometry::new(16, 16)).with_extension(2),
        CompilerOptions::new(LayerGeometry::new(16, 16).with_topology(Topology::Triangular)),
    ];
    for (i, options) in configs.into_iter().enumerate() {
        let a = Compiler::new(options).compile(&circuit);
        let b = Compiler::new(options).compile(&circuit);
        assert_identical(&a, &b, &format!("config {i}"));
    }
}

/// The resource-kind sweep of Fig. 12 is deterministic per kind.
#[test]
fn resource_kinds_are_deterministic() {
    let circuit = BenchKind::Rca.circuit(16, SEED);
    for kind in [
        ResourceKind::LINE3,
        ResourceKind::LINE4,
        ResourceKind::STAR4,
        ResourceKind::RING4,
    ] {
        let options = CompilerOptions::new(LayerGeometry::new(16, 16)).with_resource_kind(kind);
        let a = Compiler::new(options).compile(&circuit);
        let b = Compiler::new(options).compile(&circuit);
        assert_identical(&a, &b, &format!("{kind}"));
    }
}
