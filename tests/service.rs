//! Integration tests for the `oneqd` compile service (`/v1` API).
//!
//! The acceptance contract (ISSUE 6, extending ISSUE 4–5): for every
//! fixture in `tests/fixtures/qasm/`, the daemon's `POST /v1/compile`
//! response — and its line in a `POST /v1/compile-batch` response — is
//! byte-identical to `oneqc`'s JSONL record for the same source and
//! config; a repeated identical request is served from the memory tier
//! with a byte-identical body; a server restarted onto the same
//! `--cache-dir` serves it from the disk tier, still byte-identical; a
//! ≥32-thread storm on one cold key performs exactly one compile
//! (single-flight); connections are keep-alive sessions; and `loadgen`
//! emits a well-formed `BENCH_service.json` with the cold-vs-warm
//! restart comparison. The record-identity properties are checked
//! against the real `oneqc` *binary*, not a shared code path re-run
//! in-process, so a regression in either front door breaks the diff.
//! (The unversioned PR-4 shims served their one promised release and
//! are gone: `/healthz`, `/stats`, and `/compile` now 404.)

use oneq_service::http::{self, ClientConn};
use oneq_service::json;
use oneq_service::server::{Server, ServerConfig, ServerHandle};
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(60);

fn fixture_files() -> Vec<PathBuf> {
    let files = oneq_service::corpus::qasm_files_flat(&oneq_bench::qasm_fixture_dir())
        .expect("fixture corpus directory exists");
    assert!(!files.is_empty(), "fixture corpus is not empty");
    files
}

fn spawn_server() -> ServerHandle {
    spawn_server_with(ServerConfig::default())
}

fn spawn_server_with(config: ServerConfig) -> ServerHandle {
    Server::bind("127.0.0.1:0", config)
        .expect("bind loopback")
        .spawn()
        .expect("spawn server thread")
}

fn post_compile(handle: &ServerHandle, label: &str, source: &[u8]) -> http::ClientResponse {
    let target = format!("/v1/compile?file={}", http::percent_encode(label));
    http::request(handle.addr(), "POST", &target, source, TIMEOUT).expect("POST /v1/compile")
}

fn get_stats(handle: &ServerHandle) -> String {
    let stats =
        http::request(handle.addr(), "GET", "/v1/stats", b"", TIMEOUT).expect("GET /v1/stats");
    assert_eq!(stats.status, 200);
    String::from_utf8(stats.body).expect("stats body")
}

/// Runs the real `oneqc` binary over `paths` (default config) and
/// returns its JSONL stdout.
fn oneqc_jsonl(paths: &[&str]) -> String {
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_oneqc"))
        .args(paths)
        .output()
        .expect("run oneqc");
    assert!(output.status.success(), "oneqc failed: {output:?}");
    String::from_utf8(output.stdout).expect("oneqc emits UTF-8")
}

/// Pulls `"name": <integer>` out of a stats body (the workspace has no
/// JSON parser; the emitter is ours, so the textual shape is stable).
fn json_u64(body: &str, name: &str) -> u64 {
    let pat = format!("\"{name}\": ");
    let start = body
        .find(&pat)
        .unwrap_or_else(|| panic!("{name} in {body}"))
        + pat.len();
    body[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("integer stats field")
}

#[test]
fn compile_responses_match_oneqc_records_for_every_fixture() {
    // One oneqc batch over the whole corpus, default config.
    let dir = oneq_bench::qasm_fixture_dir();
    let jsonl = oneqc_jsonl(&[&dir.display().to_string()]);
    let records: Vec<&str> = jsonl.lines().collect();
    let files = fixture_files();
    assert_eq!(records.len(), files.len());

    let handle = spawn_server();
    for (path, record) in files.iter().zip(&records) {
        // oneqc labelled the record with the path it was invoked with.
        let label = path.display().to_string();
        assert!(
            record.contains(&format!("\"file\": \"{label}\"")),
            "record/file pairing: {record}"
        );
        let source = std::fs::read(path).expect("read fixture");
        let response = post_compile(&handle, &label, &source);
        assert_eq!(response.status, 200, "{label}");
        assert_eq!(response.header("x-oneqd-cache"), Some("miss"), "{label}");
        let body = String::from_utf8(response.body).expect("JSON body");
        assert_eq!(
            body,
            format!("{record}\n"),
            "daemon response differs from oneqc record for {label}"
        );
    }
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn batch_endpoint_matches_oneqc_jsonl_for_the_whole_corpus() {
    // The JSONL a batch request returns must be byte-identical to what
    // the oneqc binary prints for the same files in the same order.
    let dir = oneq_bench::qasm_fixture_dir();
    let expected = oneqc_jsonl(&[&dir.display().to_string()]);

    let mut batch = String::new();
    for path in fixture_files() {
        let source = std::fs::read_to_string(&path).expect("read fixture");
        batch.push_str(&format!(
            "{{\"file\": \"{}\", \"source\": \"{}\"}}\n",
            json::escape(&path.display().to_string()),
            json::escape(&source)
        ));
    }

    let handle = spawn_server();
    let response = http::request(
        handle.addr(),
        "POST",
        "/v1/compile-batch",
        batch.as_bytes(),
        TIMEOUT,
    )
    .expect("POST /v1/compile-batch");
    assert_eq!(response.status, 200);
    let records = fixture_files().len().to_string();
    assert_eq!(
        response.header("x-oneqd-batch-records"),
        Some(records.as_str())
    );
    assert_eq!(response.header("x-oneqd-batch-errors"), Some("0"));
    let body = String::from_utf8(response.body).expect("JSONL body");
    assert_eq!(
        body, expected,
        "batch response differs from oneqc JSONL output"
    );

    // A second identical batch is served from the cache, byte-identical.
    let again = http::request(
        handle.addr(),
        "POST",
        "/v1/compile-batch",
        batch.as_bytes(),
        TIMEOUT,
    )
    .expect("second batch");
    let cache_line = again
        .header("x-oneqd-cache")
        .expect("aggregate header")
        .to_string();
    assert_eq!(String::from_utf8(again.body).unwrap(), expected);
    assert!(
        cache_line.starts_with(&format!("memory={} disk=0 miss=0", fixture_files().len())),
        "warm batch is all memory-tier hits: {cache_line}"
    );

    let stats = get_stats(&handle);
    assert_eq!(json_u64(&stats, "batch_requests"), 2);
    assert_eq!(
        json_u64(&stats, "batch_records"),
        2 * fixture_files().len() as u64
    );
    assert_eq!(
        json_u64(&stats, "compile_executions"),
        fixture_files().len() as u64,
        "second batch compiled nothing"
    );
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn batch_shares_one_cache_with_single_compiles() {
    let handle = spawn_server();
    let path = &fixture_files()[0];
    let label = path.display().to_string();
    let source = std::fs::read_to_string(path).expect("read fixture");

    // Warm through the single endpoint…
    let single = post_compile(&handle, &label, source.as_bytes());
    assert_eq!(single.header("x-oneqd-cache"), Some("miss"));
    // …and hit through the batch endpoint: same CompileRequest, same
    // fingerprint, same cache entry.
    let line = format!(
        "{{\"file\": \"{}\", \"source\": \"{}\"}}\n",
        json::escape(&label),
        json::escape(&source)
    );
    let batch = http::request(
        handle.addr(),
        "POST",
        "/v1/compile-batch",
        line.as_bytes(),
        TIMEOUT,
    )
    .expect("batch");
    assert_eq!(
        batch.header("x-oneqd-cache"),
        Some("memory=1 disk=0 miss=0 coalesced=0 bypass=0")
    );
    assert_eq!(batch.body, single.body);
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn batch_error_handling_and_limits() {
    let handle = spawn_server();

    // A compile failure is an inline error record, not an HTTP error.
    let batch = "{\"file\": \"bad.qasm\", \"source\": \"OPENQASM 2.0;\\nnope;\\n\"}\n\
                 {\"file\": \"empty.qasm\", \"source\": \"OPENQASM 2.0;\\ninclude \\\"qelib1.inc\\\";\\nqreg q[1];\\nh q[0];\\n\"}\n";
    let response = http::request(
        handle.addr(),
        "POST",
        "/v1/compile-batch",
        batch.as_bytes(),
        TIMEOUT,
    )
    .expect("batch with failing line");
    assert_eq!(response.status, 200);
    assert_eq!(response.header("x-oneqd-batch-records"), Some("2"));
    assert_eq!(response.header("x-oneqd-batch-errors"), Some("1"));
    let body = String::from_utf8(response.body).unwrap();
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len(), 2);
    assert!(lines[0].starts_with("{\"file\": \"bad.qasm\", \"status\": \"error\""));
    assert!(lines[1].starts_with("{\"file\": \"empty.qasm\", \"status\": \"ok\""));

    // A malformed line is a framing error for the whole batch, naming
    // the line.
    let malformed = "{\"file\": \"a.qasm\", \"source\": \"x\"}\nnot json\n";
    let response = http::request(
        handle.addr(),
        "POST",
        "/v1/compile-batch",
        malformed.as_bytes(),
        TIMEOUT,
    )
    .expect("malformed batch");
    assert_eq!(response.status, 400);
    assert!(String::from_utf8(response.body)
        .unwrap()
        .contains("batch line 2"));

    // An unknown member and a missing source are rejected the same way.
    for bad in ["{\"source\": \"x\", \"what\": 1}", "{\"file\": \"a.qasm\"}"] {
        let response = http::request(
            handle.addr(),
            "POST",
            "/v1/compile-batch",
            bad.as_bytes(),
            TIMEOUT,
        )
        .expect("bad batch line");
        assert_eq!(response.status, 400, "{bad}");
    }

    // An empty body holds no request lines.
    let response = http::request(handle.addr(), "POST", "/v1/compile-batch", b"\n\n", TIMEOUT)
        .expect("empty batch");
    assert_eq!(response.status, 400);
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn repeated_requests_hit_the_cache_with_identical_bytes() {
    let handle = spawn_server();
    let files = fixture_files();
    let mut first = Vec::new();
    for path in &files {
        let label = path.display().to_string();
        let source = std::fs::read(path).expect("read fixture");
        let response = post_compile(&handle, &label, &source);
        assert_eq!(response.header("x-oneqd-cache"), Some("miss"));
        first.push((label, source, response.body));
    }
    for (label, source, body) in &first {
        let response = post_compile(&handle, label, source);
        assert_eq!(response.status, 200);
        assert_eq!(
            response.header("x-oneqd-cache"),
            Some("memory"),
            "second request for {label} must be served from the memory tier"
        );
        assert_eq!(&response.body, body, "cached body differs for {label}");
    }

    let stats = get_stats(&handle);
    assert!(stats.contains("\"schema\": \"oneqd-stats/v6\""));
    // Memory-only server: the disk block reports itself disabled.
    assert!(stats.contains("\"disk\": {\"enabled\": false}"));
    assert_eq!(json_u64(&stats, "fills"), files.len() as u64);
    assert_eq!(json_u64(&stats, "hits"), files.len() as u64);
    assert_eq!(json_u64(&stats, "misses"), files.len() as u64);
    assert_eq!(json_u64(&stats, "entries"), files.len() as u64);
    assert_eq!(json_u64(&stats, "compile_ok"), 2 * files.len() as u64);
    assert_eq!(json_u64(&stats, "compile_errors"), 0);
    assert_eq!(
        json_u64(&stats, "compile_executions"),
        files.len() as u64,
        "the hit pass compiled nothing"
    );
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn keep_alive_session_serves_many_requests_on_one_socket() {
    let handle = spawn_server();
    let files = fixture_files();
    let mut conn = ClientConn::connect(handle.addr(), TIMEOUT).expect("open session");

    // Interleave misses and hits over one socket: for each fixture, a
    // cold request then an immediate identical one.
    for path in &files {
        let label = path.display().to_string();
        let source = std::fs::read(path).expect("read fixture");
        let target = format!("/v1/compile?file={}", http::percent_encode(&label));
        let cold = conn.send("POST", &target, &source).expect("cold request");
        assert_eq!(cold.status, 200, "{label}");
        assert_eq!(cold.header("x-oneqd-cache"), Some("miss"));
        assert!(cold.keep_alive(), "server keeps the session alive");
        let warm = conn.send("POST", &target, &source).expect("warm request");
        assert_eq!(warm.header("x-oneqd-cache"), Some("memory"));
        assert_eq!(warm.body, cold.body, "hit bytes identical on one socket");
    }
    // Health and stats ride the same socket.
    let health = conn.send("GET", "/v1/healthz", b"").expect("healthz");
    assert_eq!(health.status, 200);
    let stats = conn.send("GET", "/v1/stats", b"").expect("stats");
    let stats = String::from_utf8(stats.body).unwrap();
    assert_eq!(
        json_u64(&stats, "connections"),
        1,
        "the whole session used one connection"
    );
    assert_eq!(json_u64(&stats, "requests"), 2 * files.len() as u64 + 2);
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn keep_alive_request_cap_closes_the_session() {
    let config = ServerConfig {
        keep_alive_requests: 3,
        ..ServerConfig::default()
    };
    let handle = spawn_server_with(config);
    let mut conn = ClientConn::connect(handle.addr(), TIMEOUT).expect("open session");
    for i in 0..3 {
        let resp = conn.send("GET", "/v1/healthz", b"").expect("health");
        assert_eq!(resp.status, 200);
        let expect_alive = i < 2;
        assert_eq!(
            resp.keep_alive(),
            expect_alive,
            "request {} of a 3-request cap",
            i + 1
        );
    }
    // The server closed the socket; the next exchange fails.
    assert!(
        conn.send("GET", "/v1/healthz", b"").is_err(),
        "capped session is closed"
    );
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn keep_alive_idle_timeout_closes_the_session() {
    let config = ServerConfig {
        idle_timeout: Duration::from_millis(150),
        ..ServerConfig::default()
    };
    let handle = spawn_server_with(config);
    let mut conn = ClientConn::connect(handle.addr(), TIMEOUT).expect("open session");
    let resp = conn.send("GET", "/v1/healthz", b"").expect("first request");
    assert!(resp.keep_alive());
    std::thread::sleep(Duration::from_millis(600));
    assert!(
        conn.send("GET", "/v1/healthz", b"").is_err(),
        "idle session was reaped"
    );
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn mixed_case_headers_work_over_a_real_socket() {
    // Regression (RFC 9110): header names and Connection tokens are
    // case-insensitive. Speak raw bytes so no client normalizes for us.
    let handle = spawn_server();
    let mut stream = std::net::TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(TIMEOUT))
        .expect("read timeout");
    let body = b"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[1];\nh q[0];\n";
    write!(
        stream,
        "POST /v1/compile?file=mixed.qasm HTTP/1.1\r\nHost: x\r\n\
         Content-LENGTH: {}\r\nCONNECTION: Keep-ALIVE\r\n\r\n",
        body.len()
    )
    .expect("write head");
    stream.write_all(body).expect("write body");
    let mut reader = std::io::BufReader::new(stream);
    let first = http::read_client_response(&mut reader).expect("first response");
    assert_eq!(first.status, 200);
    assert!(
        first.keep_alive(),
        "mixed-case Keep-ALIVE token was honored"
    );
    // The session survived: a second request flows on the same socket.
    write!(
        reader.get_mut(),
        "GET /v1/healthz HTTP/1.1\r\nHost: x\r\nConnection: CLOSE\r\n\r\n"
    )
    .expect("write second");
    let second = http::read_client_response(&mut reader).expect("second response");
    assert_eq!(second.status, 200);
    assert!(!second.keep_alive(), "mixed-case CLOSE token was honored");
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn oversized_bodies_get_413_before_buffering_and_close_the_session() {
    let config = ServerConfig {
        max_body: 64,
        ..ServerConfig::default()
    };
    let handle = spawn_server_with(config);
    let mut conn = ClientConn::connect(handle.addr(), TIMEOUT).expect("open session");
    let big = vec![b'x'; 4096];
    let resp = conn
        .send("POST", "/v1/compile", &big)
        .expect("413 response arrives despite the unread body");
    assert_eq!(resp.status, 413);
    assert!(!resp.keep_alive(), "oversize violation ends the session");
    assert!(
        conn.send("GET", "/v1/healthz", b"").is_err(),
        "session is closed after a 413"
    );
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn legacy_unversioned_routes_are_gone() {
    // The PR-4 shims were promised exactly one migration release (PR 5);
    // the unversioned paths are now plain 404s like any unknown route.
    let handle = spawn_server();
    for (method, path) in [
        ("GET", "/healthz"),
        ("GET", "/stats"),
        ("POST", "/compile"),
        ("POST", "/compile?file=a.qasm"),
    ] {
        let resp = http::request(handle.addr(), method, path, b"x", TIMEOUT).expect("request");
        assert_eq!(resp.status, 404, "{method} {path}");
        assert_eq!(resp.header("deprecation"), None, "{method} {path}");
        assert_eq!(resp.header("location"), None, "{method} {path}");
    }
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn warm_restart_serves_from_the_disk_tier_byte_identically() {
    // ISSUE 6 acceptance (in-process variant; the daemon-level test
    // lives in crates/service/tests/daemon.rs): a server restarted onto
    // the same cache dir answers a previously-compiled fixture as a
    // disk-tier hit with a byte-identical body.
    let dir = tempdir().join("spill");
    let config = ServerConfig {
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };

    let files = fixture_files();
    let mut first = Vec::new();
    {
        let handle = spawn_server_with(config.clone());
        for path in &files {
            let label = path.display().to_string();
            let source = std::fs::read(path).expect("read fixture");
            let response = post_compile(&handle, &label, &source);
            assert_eq!(response.status, 200);
            assert_eq!(response.header("x-oneqd-cache"), Some("miss"));
            first.push((label, source, response.body));
        }
        handle.shutdown().expect("clean shutdown");
        // shutdown() consumed the handle: the spill tier has flushed its
        // write-behind queue and released the directory lock.
    }

    let handle = spawn_server_with(config);
    for (label, source, body) in &first {
        let response = post_compile(&handle, label, source);
        assert_eq!(response.status, 200, "{label}");
        assert_eq!(
            response.header("x-oneqd-cache"),
            Some("disk"),
            "restarted server serves {label} from the disk tier"
        );
        assert_eq!(
            &response.body, body,
            "disk-tier body differs from the original compile for {label}"
        );
        // Promotion: the next identical request answers from memory.
        let again = post_compile(&handle, label, source);
        assert_eq!(again.header("x-oneqd-cache"), Some("memory"), "{label}");
        assert_eq!(&again.body, body, "{label}");
    }

    let stats = get_stats(&handle);
    assert!(stats.contains("\"enabled\": true"));
    assert_eq!(
        json_u64(&stats, "compile_executions"),
        0,
        "the warm restart compiled nothing"
    );
    // The memory block comes first in the body, so slice past it before
    // pulling disk-tier counters by name.
    let disk = &stats[stats.find("\"disk\"").expect("disk block")..];
    assert_eq!(json_u64(disk, "hits"), files.len() as u64);
    assert_eq!(json_u64(disk, "recovered_records"), files.len() as u64);
    assert_eq!(json_u64(disk, "truncated_tails"), 0);
    handle.shutdown().expect("clean shutdown");
    std::fs::remove_dir_all(dir.parent().unwrap()).ok();
}

#[test]
fn cache_distinguishes_configs_and_labels() {
    let handle = spawn_server();
    let path = &fixture_files()[0];
    let source = std::fs::read(path).expect("read fixture");

    let a = post_compile(&handle, "a.qasm", &source);
    assert_eq!(a.header("x-oneqd-cache"), Some("miss"));
    // Same source, different label → different response bytes → miss.
    let b = post_compile(&handle, "b.qasm", &source);
    assert_eq!(b.header("x-oneqd-cache"), Some("miss"));
    assert_ne!(a.body, b.body);
    // Same source + label, different geometry → miss.
    let c = http::request(
        handle.addr(),
        "POST",
        "/v1/compile?file=a.qasm&side=25",
        &source,
        TIMEOUT,
    )
    .expect("POST with side");
    assert_eq!(c.header("x-oneqd-cache"), Some("miss"));
    // Whitespace-only source changes canonicalize away → hit.
    let mut padded = String::from_utf8(source.clone()).unwrap();
    padded = padded.replace('\n', " \n");
    let d = post_compile(&handle, "a.qasm", padded.as_bytes());
    assert_eq!(
        d.header("x-oneqd-cache"),
        Some("memory"),
        "trailing whitespace must not defeat content addressing"
    );
    assert_eq!(d.body, a.body);
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn error_and_edge_responses() {
    let handle = spawn_server();

    // healthz
    let health = http::request(handle.addr(), "GET", "/v1/healthz", b"", TIMEOUT).unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(
        health.body,
        b"{\"status\": \"ok\", \"service\": \"oneqd\", \"api\": \"v1\"}\n"
    );

    // Parse failure → 422 with an oneqc-shaped error record, not cached.
    let bad = b"OPENQASM 2.0;\nqreg q[1];\nnope q[0];\n";
    let r1 = post_compile(&handle, "bad.qasm", bad);
    let r2 = post_compile(&handle, "bad.qasm", bad);
    assert_eq!(r1.status, 422);
    assert_eq!(r1.header("x-oneqd-cache"), Some("miss"));
    assert_eq!(
        r2.header("x-oneqd-cache"),
        Some("miss"),
        "errors are not cached"
    );
    assert_eq!(r1.body, r2.body, "error records are still deterministic");
    let body = String::from_utf8(r1.body).unwrap();
    assert!(body.starts_with("{\"file\": \"bad.qasm\", \"status\": \"error\""));
    assert!(body.contains("bad.qasm:3:"));

    // Unknown endpoint, wrong method, bad params.
    let missing = http::request(handle.addr(), "GET", "/nope", b"", TIMEOUT).unwrap();
    assert_eq!(missing.status, 404);
    let get_compile = http::request(handle.addr(), "GET", "/v1/compile", b"", TIMEOUT).unwrap();
    assert_eq!(get_compile.status, 405);
    assert_eq!(get_compile.header("allow"), Some("POST"));
    let get_batch = http::request(handle.addr(), "GET", "/v1/compile-batch", b"", TIMEOUT).unwrap();
    assert_eq!(get_batch.status, 405);
    let post_health = http::request(handle.addr(), "POST", "/v1/healthz", b"", TIMEOUT).unwrap();
    assert_eq!(post_health.status, 405);
    let bad_param =
        http::request(handle.addr(), "POST", "/v1/compile?side=0", b"x", TIMEOUT).unwrap();
    assert_eq!(bad_param.status, 400);
    let unknown_param =
        http::request(handle.addr(), "POST", "/v1/compile?what=1", b"x", TIMEOUT).unwrap();
    assert_eq!(unknown_param.status, 400);
    let rows_only =
        http::request(handle.addr(), "POST", "/v1/compile?rows=4", b"x", TIMEOUT).unwrap();
    assert_eq!(rows_only.status, 400);

    // Stats accounting for the traffic above.
    let stats = get_stats(&handle);
    assert_eq!(json_u64(&stats, "compile_errors"), 2);
    assert!(json_u64(&stats, "http_errors") >= 6);
    assert_eq!(json_u64(&stats, "healthz_requests"), 1);
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn timings_and_bypass_requests_bypass_the_cache() {
    let handle = spawn_server();
    let path = &fixture_files()[0];
    let label = path.display().to_string();
    let source = std::fs::read(path).unwrap();
    let target = format!(
        "/v1/compile?file={}&timings=1",
        http::percent_encode(&label)
    );
    for _ in 0..2 {
        let r = http::request(handle.addr(), "POST", &target, &source, TIMEOUT).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.header("x-oneqd-cache"), Some("bypass"));
        assert!(String::from_utf8(r.body).unwrap().contains("timings_ns"));
    }
    // Explicit bypass=1 skips the cache without timings.
    let target = format!("/v1/compile?file={}&bypass=1", http::percent_encode(&label));
    let r = http::request(handle.addr(), "POST", &target, &source, TIMEOUT).unwrap();
    assert_eq!(r.header("x-oneqd-cache"), Some("bypass"));
    assert!(!String::from_utf8(r.body).unwrap().contains("timings_ns"));
    // A bypassed request neither reads nor warms the cache.
    let plain = post_compile(&handle, &label, &source);
    assert_eq!(plain.header("x-oneqd-cache"), Some("miss"));
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn single_flight_storm_compiles_once_with_byte_identical_responses() {
    // ISSUE 5 acceptance: a concurrent-miss burst on one key performs
    // exactly one compile, and every response is byte-identical to
    // oneqc's record for the same file.
    const STORM: usize = 32;
    let config = ServerConfig {
        workers: STORM + 4, // every racer gets a live connection
        backlog: STORM + 4,
        ..ServerConfig::default()
    };
    let handle = spawn_server_with(config);

    let files = fixture_files();
    // bv-100 is the slowest fixture — the widest window for the storm to
    // overlap the leader's compile.
    let path = files
        .iter()
        .find(|p| p.ends_with("bv-100.qasm"))
        .unwrap_or(&files[0]);
    let label = path.display().to_string();
    let expected = oneqc_jsonl(&[&label]);
    let source = std::fs::read(path).expect("read fixture");

    let responses: Vec<http::ClientResponse> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..STORM)
            .map(|_| {
                let handle = &handle;
                let label = &label;
                let source = &source;
                scope.spawn(move || post_compile(handle, label, source))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut outcome_counts = std::collections::HashMap::new();
    for resp in &responses {
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.body,
            expected.as_bytes(),
            "every storm response is byte-identical to the oneqc record"
        );
        *outcome_counts
            .entry(resp.header("x-oneqd-cache").unwrap_or("?").to_string())
            .or_insert(0usize) += 1;
    }
    assert_eq!(
        outcome_counts.get("miss").copied().unwrap_or(0),
        1,
        "exactly one leader: {outcome_counts:?}"
    );
    assert_eq!(
        outcome_counts.get("coalesced").copied().unwrap_or(0)
            + outcome_counts.get("memory").copied().unwrap_or(0),
        STORM - 1,
        "everyone else was coalesced or served from cache: {outcome_counts:?}"
    );

    let stats = get_stats(&handle);
    assert_eq!(
        json_u64(&stats, "compile_executions"),
        1,
        "the storm ran exactly one compile"
    );
    assert_eq!(json_u64(&stats, "entries"), 1);
    assert_eq!(
        json_u64(&stats, "coalesced"),
        outcome_counts.get("coalesced").copied().unwrap_or(0) as u64,
        "stats counter agrees with the response headers"
    );
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn loadgen_emits_a_well_formed_two_mode_bench_file() {
    let dir = tempdir();
    let out = dir.join("BENCH_service.json");
    let corpus = oneq_bench::qasm_fixture_dir();
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_loadgen"))
        .args([
            "--corpus",
            &corpus.display().to_string(),
            "--requests",
            "14",
            "--concurrency",
            "2",
            "--out",
            &out.display().to_string(),
        ])
        .output()
        .expect("run loadgen");
    assert!(
        output.status.success(),
        "loadgen failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let body = std::fs::read_to_string(&out).expect("BENCH_service.json written");
    for key in [
        "\"schema\": \"oneq-bench-service/v5\"",
        // No --connections: the adversarial block is explicitly null.
        "\"event_loop\": null",
        "\"requests_per_mode\": 14",
        "\"concurrency\": 2",
        "\"close\": {\"mode\": \"close\"",
        "\"keep_alive\": {\"mode\": \"keep-alive\"",
        "\"throughput_rps\": ",
        "\"keep_alive_speedup\": ",
        "\"coalesced\": ",
        "\"p50\": ",
        "\"p99\": ",
        "\"server_stats\": {",
        "\"warm_restart\": {",
        "\"warm_speedup\": ",
        // v5: server-side histogram percentiles diffed from /v1/metrics.
        "\"server_metrics\": {",
        "\"stages\": {",
        "\"tiers\": {",
        "\"p999_ns\": ",
        // v5 stats: the appended telemetry block rides along verbatim.
        "\"telemetry\": {",
        "\"traces_recorded\": ",
    ] {
        assert!(body.contains(key), "missing {key} in {body}");
    }
    // The warmup pass means every measured request is a memory hit.
    assert!(json_u64(&body, "memory") >= 1, "loadgen saw cache hits");
    assert_eq!(json_u64(&body, "errors"), 0);
    // The warm-restart block's second pass answered purely from disk:
    // same files, zero fresh compiles.
    let warm = &body[body.find("\"warm\": {").expect("warm pass recorded")..];
    assert!(json_u64(warm, "disk") >= 1, "warm pass hit the disk tier");
    assert_eq!(json_u64(warm, "miss"), 0, "warm pass recompiled nothing");
    std::fs::remove_dir_all(&dir).ok();
}

/// Reads one exposition series value: the line starting `series ` (the
/// full name-plus-labels prefix, then a space, then the value).
fn metric_u64(text: &str, series: &str) -> u64 {
    text.lines()
        .find_map(|l| l.strip_prefix(series).and_then(|r| r.strip_prefix(' ')))
        .unwrap_or_else(|| panic!("series `{series}` in metrics:\n{text}"))
        .trim()
        .parse()
        .expect("integer metric value")
}

#[test]
fn metrics_endpoint_agrees_with_stats_and_counts_every_stage() {
    let handle = spawn_server();
    let files = fixture_files();
    // One miss then one memory hit per fixture.
    for path in &files {
        let label = path.display().to_string();
        let source = std::fs::read(path).expect("read fixture");
        assert_eq!(post_compile(&handle, &label, &source).status, 200);
        assert_eq!(post_compile(&handle, &label, &source).status, 200);
    }

    let stats = get_stats(&handle);
    let resp =
        http::request(handle.addr(), "GET", "/v1/metrics", b"", TIMEOUT).expect("GET /v1/metrics");
    assert_eq!(resp.status, 200);
    let content_type = resp.header("content-type").expect("content type");
    assert!(
        content_type.starts_with("text/plain"),
        "exposition content type: {content_type}"
    );
    let text = String::from_utf8(resp.body).expect("exposition text");

    for ty in [
        "# TYPE oneqd_requests_total counter",
        "# TYPE oneqd_compile_stage_seconds histogram",
        "# TYPE oneqd_cache_outcomes_total counter",
        "# TYPE oneqd_cache_lookup_seconds histogram",
        "# TYPE oneqd_request_seconds histogram",
        "# TYPE oneqd_queue_depth gauge",
        "# TYPE oneqd_loop_ready_fds gauge",
        "# TYPE oneqd_loop_iteration_seconds histogram",
        "# TYPE oneqd_queue_wait_seconds histogram",
        "# TYPE oneqd_response_write_seconds histogram",
    ] {
        assert!(text.contains(ty), "missing `{ty}` in metrics:\n{text}");
    }

    // Every pipeline stage histogram saw exactly the cold compiles (the
    // hit pass compiled nothing).
    let n = files.len() as u64;
    for stage in [
        "parse",
        "translate",
        "partition",
        "fusion_graph",
        "mapping",
        "shuffle",
        "wall",
    ] {
        assert_eq!(
            metric_u64(
                &text,
                &format!("oneqd_compile_stage_seconds_count{{stage=\"{stage}\"}}")
            ),
            n,
            "stage `{stage}` counted one sample per cold compile"
        );
    }
    // Per-tier outcome counters match the request pattern.
    assert_eq!(
        metric_u64(&text, "oneqd_cache_outcomes_total{tier=\"miss\"}"),
        n
    );
    assert_eq!(
        metric_u64(&text, "oneqd_cache_outcomes_total{tier=\"memory\"}"),
        n
    );
    assert_eq!(
        metric_u64(&text, "oneqd_cache_lookup_seconds_count{tier=\"memory\"}"),
        n
    );

    // Both surfaces render from one registry, so every overlapping
    // number the interleaved scrapes cannot perturb must agree exactly.
    for (stats_key, series) in [
        ("compile_ok", "oneqd_compile_ok_total"),
        ("compile_errors", "oneqd_compile_errors_total"),
        ("compile_executions", "oneqd_compile_executions_total"),
        ("fills", "oneqd_cache_fills_total"),
        ("hits", "oneqd_cache_memory_hits_total"),
        ("misses", "oneqd_cache_memory_misses_total"),
        ("batch_records", "oneqd_batch_records_total"),
    ] {
        assert_eq!(
            json_u64(&stats, stats_key),
            metric_u64(&text, series),
            "/v1/stats `{stats_key}` vs /v1/metrics `{series}`"
        );
    }
    // The v5 telemetry block: every compile request above closed its
    // trace before its response finished flushing to us.
    assert!(json_u64(&stats, "traces_recorded") >= 2 * n);
    assert!(json_u64(&stats, "loop_iterations") > 0);
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn request_id_is_echoed_or_minted_on_every_route() {
    let handle = spawn_server();
    let path = &fixture_files()[0];
    let label = path.display().to_string();
    let source = std::fs::read(path).expect("read fixture");
    let target = format!("/v1/compile?file={}", http::percent_encode(&label));

    // A well-formed inbound id is adopted and echoed verbatim.
    let resp = http::request_with_headers(
        handle.addr(),
        "POST",
        &target,
        &[("X-Oneqd-Request-Id", "client-id.01")],
        &source,
        TIMEOUT,
    )
    .expect("compile with inbound id");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-oneqd-request-id"), Some("client-id.01"));

    // A hostile inbound id (whitespace) is replaced with a minted one.
    let resp = http::request_with_headers(
        handle.addr(),
        "POST",
        &target,
        &[("X-Oneqd-Request-Id", "bad id with spaces")],
        &source,
        TIMEOUT,
    )
    .expect("compile with invalid id");
    let minted = resp
        .header("x-oneqd-request-id")
        .expect("minted id on response")
        .to_string();
    assert_ne!(minted, "bad id with spaces");
    assert!(!minted.is_empty());

    // Inline routes mint ids too, distinct per request.
    let mut ids = Vec::new();
    for route in ["/v1/healthz", "/v1/stats", "/v1/metrics"] {
        let resp = http::request(handle.addr(), "GET", route, b"", TIMEOUT).expect("inline route");
        ids.push(
            resp.header("x-oneqd-request-id")
                .unwrap_or_else(|| panic!("{route} carries a request id"))
                .to_string(),
        );
    }
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), 3, "minted ids are distinct");
    handle.shutdown().expect("clean shutdown");
}

fn tempdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "oneq-service-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}
