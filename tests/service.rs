//! Integration tests for the `oneqd` compile service.
//!
//! The acceptance contract (ISSUE 4): for every fixture in
//! `tests/fixtures/qasm/`, the daemon's `POST /compile` response is
//! byte-identical to `oneqc`'s JSONL record for the same source and
//! config; a repeated identical request is served from the cache with a
//! byte-identical body; and `loadgen` emits a well-formed
//! `BENCH_service.json`. The first property is checked against the real
//! `oneqc` *binary*, not a shared code path re-run in-process, so a
//! regression in either front door breaks the diff.

use oneq_service::http;
use oneq_service::server::{Server, ServerConfig, ServerHandle};
use std::path::PathBuf;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(60);

fn fixture_files() -> Vec<PathBuf> {
    let files = oneq_service::corpus::qasm_files_flat(&oneq_bench::qasm_fixture_dir())
        .expect("fixture corpus directory exists");
    assert!(!files.is_empty(), "fixture corpus is not empty");
    files
}

fn spawn_server() -> ServerHandle {
    Server::bind("127.0.0.1:0", ServerConfig::default())
        .expect("bind loopback")
        .spawn()
        .expect("spawn server thread")
}

fn post_compile(handle: &ServerHandle, label: &str, source: &[u8]) -> http::ClientResponse {
    let target = format!("/compile?file={}", http::percent_encode(label));
    http::request(handle.addr(), "POST", &target, source, TIMEOUT).expect("POST /compile")
}

/// Pulls `"name": <integer>` out of a stats body (the workspace has no
/// JSON parser; the emitter is ours, so the textual shape is stable).
fn json_u64(body: &str, name: &str) -> u64 {
    let pat = format!("\"{name}\": ");
    let start = body
        .find(&pat)
        .unwrap_or_else(|| panic!("{name} in {body}"))
        + pat.len();
    body[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("integer stats field")
}

#[test]
fn compile_responses_match_oneqc_records_for_every_fixture() {
    // One oneqc batch over the whole corpus, default config.
    let dir = oneq_bench::qasm_fixture_dir();
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_oneqc"))
        .arg(&dir)
        .output()
        .expect("run oneqc");
    assert!(output.status.success(), "oneqc failed: {output:?}");
    let jsonl = String::from_utf8(output.stdout).expect("oneqc emits UTF-8");
    let records: Vec<&str> = jsonl.lines().collect();
    let files = fixture_files();
    assert_eq!(records.len(), files.len());

    let handle = spawn_server();
    for (path, record) in files.iter().zip(&records) {
        // oneqc labelled the record with the path it was invoked with.
        let label = path.display().to_string();
        assert!(
            record.contains(&format!("\"file\": \"{label}\"")),
            "record/file pairing: {record}"
        );
        let source = std::fs::read(path).expect("read fixture");
        let response = post_compile(&handle, &label, &source);
        assert_eq!(response.status, 200, "{label}");
        assert_eq!(response.header("x-oneqd-cache"), Some("miss"), "{label}");
        let body = String::from_utf8(response.body).expect("JSON body");
        assert_eq!(
            body,
            format!("{record}\n"),
            "daemon response differs from oneqc record for {label}"
        );
    }
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn repeated_requests_hit_the_cache_with_identical_bytes() {
    let handle = spawn_server();
    let files = fixture_files();
    let mut first = Vec::new();
    for path in &files {
        let label = path.display().to_string();
        let source = std::fs::read(path).expect("read fixture");
        let response = post_compile(&handle, &label, &source);
        assert_eq!(response.header("x-oneqd-cache"), Some("miss"));
        first.push((label, source, response.body));
    }
    for (label, source, body) in &first {
        let response = post_compile(&handle, label, source);
        assert_eq!(response.status, 200);
        assert_eq!(
            response.header("x-oneqd-cache"),
            Some("hit"),
            "second request for {label} must be served from cache"
        );
        assert_eq!(&response.body, body, "cached body differs for {label}");
    }

    let stats = http::request(handle.addr(), "GET", "/stats", b"", TIMEOUT).expect("GET /stats");
    assert_eq!(stats.status, 200);
    let stats = String::from_utf8(stats.body).expect("stats body");
    assert_eq!(json_u64(&stats, "hits"), files.len() as u64);
    assert_eq!(json_u64(&stats, "misses"), files.len() as u64);
    assert_eq!(json_u64(&stats, "entries"), files.len() as u64);
    assert_eq!(json_u64(&stats, "compile_ok"), 2 * files.len() as u64);
    assert_eq!(json_u64(&stats, "compile_errors"), 0);
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn cache_distinguishes_configs_and_labels() {
    let handle = spawn_server();
    let path = &fixture_files()[0];
    let source = std::fs::read(path).expect("read fixture");

    let a = post_compile(&handle, "a.qasm", &source);
    assert_eq!(a.header("x-oneqd-cache"), Some("miss"));
    // Same source, different label → different response bytes → miss.
    let b = post_compile(&handle, "b.qasm", &source);
    assert_eq!(b.header("x-oneqd-cache"), Some("miss"));
    assert_ne!(a.body, b.body);
    // Same source + label, different geometry → miss.
    let c = http::request(
        handle.addr(),
        "POST",
        "/compile?file=a.qasm&side=25",
        &source,
        TIMEOUT,
    )
    .expect("POST with side");
    assert_eq!(c.header("x-oneqd-cache"), Some("miss"));
    // Whitespace-only source changes canonicalize away → hit.
    let mut padded = String::from_utf8(source.clone()).unwrap();
    padded = padded.replace('\n', " \n");
    let d = post_compile(&handle, "a.qasm", padded.as_bytes());
    assert_eq!(
        d.header("x-oneqd-cache"),
        Some("hit"),
        "trailing whitespace must not defeat content addressing"
    );
    assert_eq!(d.body, a.body);
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn error_and_edge_responses() {
    let handle = spawn_server();

    // healthz
    let health = http::request(handle.addr(), "GET", "/healthz", b"", TIMEOUT).unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(
        health.body,
        b"{\"status\": \"ok\", \"service\": \"oneqd\"}\n"
    );

    // Parse failure → 422 with an oneqc-shaped error record, not cached.
    let bad = b"OPENQASM 2.0;\nqreg q[1];\nnope q[0];\n";
    let r1 = post_compile(&handle, "bad.qasm", bad);
    let r2 = post_compile(&handle, "bad.qasm", bad);
    assert_eq!(r1.status, 422);
    assert_eq!(r1.header("x-oneqd-cache"), Some("miss"));
    assert_eq!(
        r2.header("x-oneqd-cache"),
        Some("miss"),
        "errors are not cached"
    );
    assert_eq!(r1.body, r2.body, "error records are still deterministic");
    let body = String::from_utf8(r1.body).unwrap();
    assert!(body.starts_with("{\"file\": \"bad.qasm\", \"status\": \"error\""));
    assert!(body.contains("bad.qasm:3:"));

    // Unknown endpoint, wrong method, bad params.
    let missing = http::request(handle.addr(), "GET", "/nope", b"", TIMEOUT).unwrap();
    assert_eq!(missing.status, 404);
    let get_compile = http::request(handle.addr(), "GET", "/compile", b"", TIMEOUT).unwrap();
    assert_eq!(get_compile.status, 405);
    assert_eq!(get_compile.header("allow"), Some("POST"));
    let post_health = http::request(handle.addr(), "POST", "/healthz", b"", TIMEOUT).unwrap();
    assert_eq!(post_health.status, 405);
    let bad_param = http::request(handle.addr(), "POST", "/compile?side=0", b"x", TIMEOUT).unwrap();
    assert_eq!(bad_param.status, 400);
    let unknown_param =
        http::request(handle.addr(), "POST", "/compile?what=1", b"x", TIMEOUT).unwrap();
    assert_eq!(unknown_param.status, 400);
    let rows_only = http::request(handle.addr(), "POST", "/compile?rows=4", b"x", TIMEOUT).unwrap();
    assert_eq!(rows_only.status, 400);

    // Stats accounting for the traffic above.
    let stats = http::request(handle.addr(), "GET", "/stats", b"", TIMEOUT).unwrap();
    let stats = String::from_utf8(stats.body).unwrap();
    assert_eq!(json_u64(&stats, "compile_errors"), 2);
    assert!(json_u64(&stats, "http_errors") >= 5);
    assert_eq!(json_u64(&stats, "healthz_requests"), 1);
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn timings_requests_bypass_the_cache() {
    let handle = spawn_server();
    let path = &fixture_files()[0];
    let label = path.display().to_string();
    let source = std::fs::read(path).unwrap();
    let target = format!("/compile?file={}&timings=1", http::percent_encode(&label));
    for _ in 0..2 {
        let r = http::request(handle.addr(), "POST", &target, &source, TIMEOUT).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.header("x-oneqd-cache"), Some("bypass"));
        assert!(String::from_utf8(r.body).unwrap().contains("timings_ns"));
    }
    // A timed request neither reads nor warms the cache.
    let plain = post_compile(&handle, &label, &source);
    assert_eq!(plain.header("x-oneqd-cache"), Some("miss"));
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn concurrent_identical_requests_converge_to_one_entry() {
    let handle = spawn_server();
    let path = &fixture_files()[0];
    let label = path.display().to_string();
    let source = std::fs::read(path).unwrap();

    let bodies: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let handle = &handle;
                let label = &label;
                let source = &source;
                scope.spawn(move || post_compile(handle, label, source).body)
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for body in &bodies[1..] {
        assert_eq!(body, &bodies[0], "every racer sees the same bytes");
    }
    let stats = http::request(handle.addr(), "GET", "/stats", b"", TIMEOUT).unwrap();
    let stats = String::from_utf8(stats.body).unwrap();
    assert_eq!(
        json_u64(&stats, "entries"),
        1,
        "racing misses dedupe to one entry"
    );
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn loadgen_emits_a_well_formed_bench_file() {
    let dir = tempdir();
    let out = dir.join("BENCH_service.json");
    let corpus = oneq_bench::qasm_fixture_dir();
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_loadgen"))
        .args([
            "--corpus",
            &corpus.display().to_string(),
            "--requests",
            "14",
            "--concurrency",
            "2",
            "--out",
            &out.display().to_string(),
        ])
        .output()
        .expect("run loadgen");
    assert!(
        output.status.success(),
        "loadgen failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let body = std::fs::read_to_string(&out).expect("BENCH_service.json written");
    for key in [
        "\"schema\": \"oneq-bench-service/v1\"",
        "\"requests\": 14",
        "\"concurrency\": 2",
        "\"throughput_rps\": ",
        "\"cache_hit_rate\": ",
        "\"p50\": ",
        "\"p99\": ",
        "\"server_stats\": {",
    ] {
        assert!(body.contains(key), "missing {key} in {body}");
    }
    // 14 requests over 7 files = each file twice = 7 hits.
    assert!(json_u64(&body, "cache_hits") >= 1, "loadgen saw cache hits");
    assert_eq!(json_u64(&body, "errors"), 0);
    std::fs::remove_dir_all(&dir).ok();
}

fn tempdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "oneq-service-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}
