//! Property-based tests (proptest) over the core data structures and the
//! invariants DESIGN.md commits to.

use oneq_graph::{biconnected, generators, mps, planarity, traversal, Graph, NodeId};
use oneq_hardware::{fusion, ExtendedLayer, LayerGeometry, Position, ResourceKind};
use proptest::prelude::*;

/// Strategy: a random simple graph as (n, edge list).
fn graph_strategy(max_n: usize, max_m: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..max_m).prop_map(move |pairs| {
            let mut g = Graph::with_nodes(n);
            for (a, b) in pairs {
                if a != b {
                    let _ = g.add_edge(NodeId::new(a), NodeId::new(b));
                }
            }
            g
        })
    })
}

/// Strategy: a random *connected* simple graph — a random spanning tree
/// (each node attaches to a random earlier node) plus extra random edges.
fn connected_graph_strategy(max_n: usize, max_extra: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(move |n| {
        (
            proptest::collection::vec(0..usize::MAX, n - 1),
            proptest::collection::vec((0..n, 0..n), 0..max_extra),
        )
            .prop_map(move |(parents, extra)| {
                let mut g = Graph::with_nodes(n);
                for (i, &r) in parents.iter().enumerate() {
                    let child = i + 1;
                    let _ = g.add_edge(NodeId::new(child), NodeId::new(r % child));
                }
                for (a, b) in extra {
                    if a != b {
                        let _ = g.add_edge(NodeId::new(a), NodeId::new(b));
                    }
                }
                g
            })
    })
}

proptest! {
    #[test]
    fn planar_embeddings_verify(g in graph_strategy(12, 30)) {
        if let Some(embedding) = planarity::planar_embedding(&g) {
            prop_assert!(embedding.verify(&g), "embedding must satisfy Euler");
        } else {
            // Non-planar graphs must exceed the forest bound at least.
            prop_assert!(g.edge_count() > g.node_count().saturating_sub(1));
        }
    }

    #[test]
    fn planarity_is_monotone_under_edge_removal(g in graph_strategy(10, 25)) {
        if planarity::is_planar(&g) {
            let mut h = g.clone();
            if let Some(e) = h.sorted_edges().first().copied() {
                h.remove_edge(e.a(), e.b());
                prop_assert!(planarity::is_planar(&h));
            }
        }
    }

    #[test]
    fn maximal_planar_subgraph_is_planar_and_maximal(g in graph_strategy(9, 30)) {
        let r = mps::maximal_planar_subgraph(&g);
        prop_assert!(planarity::is_planar(&r.subgraph));
        prop_assert_eq!(
            r.subgraph.edge_count() + r.removed_edges.len(),
            g.edge_count()
        );
        for e in &r.removed_edges {
            prop_assert!(
                !mps::edge_addition_keeps_planar(&r.subgraph, e.a(), e.b()),
                "removed edge could be re-added"
            );
        }
    }

    #[test]
    fn bridges_disconnect_their_component(g in graph_strategy(10, 20)) {
        let before = traversal::connected_components(&g).len();
        for bridge in biconnected::bridges(&g) {
            let mut h = g.clone();
            h.remove_edge(bridge.a(), bridge.b());
            let after = traversal::connected_components(&h).len();
            prop_assert_eq!(after, before + 1, "removing a bridge splits exactly one component");
        }
    }

    #[test]
    fn non_bridges_preserve_connectivity(g in graph_strategy(10, 20)) {
        let before = traversal::connected_components(&g).len();
        let bridges = biconnected::bridges(&g);
        for e in g.sorted_edges() {
            if !bridges.contains(&e) {
                let mut h = g.clone();
                h.remove_edge(e.a(), e.b());
                prop_assert_eq!(
                    traversal::connected_components(&h).len(),
                    before,
                    "cycle edges never disconnect"
                );
            }
        }
    }

    #[test]
    fn bfs_reaches_exactly_the_component(g in graph_strategy(12, 24)) {
        let comps = traversal::connected_components(&g);
        for comp in comps {
            let order = traversal::bfs_order(&g, comp[0]);
            prop_assert_eq!(order.len(), comp.len());
        }
    }

    #[test]
    fn shortest_paths_are_consistent_with_distances(g in graph_strategy(10, 20)) {
        let dist = traversal::bfs_distances(&g, NodeId::new(0));
        for v in g.nodes() {
            match (dist[v.index()], traversal::shortest_path(&g, NodeId::new(0), v)) {
                (Some(d), Some(p)) => prop_assert_eq!(p.len(), d + 1),
                (None, None) => {}
                _ => prop_assert!(false, "distance and path disagree"),
            }
        }
    }

    #[test]
    fn fusion_size_arithmetic(m in 2usize..50, n in 2usize..50) {
        // m+n-2: each fusion destroys exactly the two measured photons.
        let s = fusion::fused_size(m, n);
        prop_assert_eq!(s, m + n - 2);
        prop_assert!(s >= m.max(n) || m.min(n) <= 2);
    }

    #[test]
    fn chain_capacity_covers_degree(d in 1usize..40) {
        // The paper's synthesis law: chains host every incident edge.
        for kind in [ResourceKind::LINE3, ResourceKind::LINE4,
                     ResourceKind::STAR4, ResourceKind::RING4] {
            let k = kind.chain_nodes(d);
            prop_assert!(k >= 1);
            if kind == ResourceKind::LINE3 && d >= 2 {
                prop_assert_eq!(k, d - 1);
            }
        }
    }

    #[test]
    fn extended_layer_roundtrip(rows in 1usize..9, cols in 1usize..9, factor in 1usize..5) {
        let ext = ExtendedLayer::new(LayerGeometry::new(rows, cols), factor);
        for p in ext.geometry().positions() {
            let (sub, phys) = ext.to_physical(p);
            prop_assert_eq!(ext.from_physical(sub, phys), p);
        }
    }

    #[test]
    fn manhattan_is_a_metric(a in 0usize..30, b in 0usize..30,
                             c in 0usize..30, d in 0usize..30,
                             e in 0usize..30, f in 0usize..30) {
        let (p, q, r) = (Position::new(a, b), Position::new(c, d), Position::new(e, f));
        prop_assert_eq!(p.manhattan(q), q.manhattan(p));
        prop_assert!(p.manhattan(r) <= p.manhattan(q) + q.manhattan(r));
        prop_assert_eq!(p.manhattan(p), 0);
    }

    #[test]
    fn grid_subgraphs_are_planar(keep in proptest::collection::vec(any::<bool>(), 40)) {
        let full = generators::grid(5, 5);
        let mut g = Graph::with_nodes(25);
        for (i, e) in full.sorted_edges().iter().enumerate() {
            if keep.get(i).copied().unwrap_or(false) {
                g.add_edge(e.a(), e.b()).unwrap();
            }
        }
        prop_assert!(planarity::is_planar(&g));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn mapping_accounts_every_edge(g in graph_strategy(14, 20)) {
        use oneq::mapping::{map_graph, MappingOptions};
        let r = map_graph(&g, LayerGeometry::new(8, 8), &MappingOptions::default());
        prop_assert!(r.total_fusions() >= g.edge_count());
        prop_assert_eq!(r.placement.len(), g.node_count());
    }

    #[test]
    fn fusion_graph_connection_edges_match(g in graph_strategy(12, 16)) {
        use oneq::fusion_graph::generate;
        let degrees: Vec<usize> = g.nodes().map(|n| g.degree(n)).collect();
        let fg = generate(&g, &degrees, ResourceKind::LINE3);
        prop_assert_eq!(fg.connection_fusions(), g.edge_count());
        prop_assert_eq!(
            fg.fusion_count(),
            fg.intra_node_fusions() + fg.connection_fusions()
        );
    }

    #[test]
    fn mapping_realizes_every_connected_edge(g in connected_graph_strategy(16, 14)) {
        use oneq::mapping::{map_graph, MappingOptions};
        let r = map_graph(&g, LayerGeometry::new(8, 8), &MappingOptions::default());
        // Every input edge is realized exactly once — as a direct fusion,
        // an in-layer routed path, or a planned shuffle.
        let mut realized = r.realized_edges.clone();
        realized.sort();
        prop_assert_eq!(realized, g.sorted_edges());
        // Shuffled edges are a subset of the realized set, and each
        // contributes to the shuffle fusion tally.
        for s in &r.shuffled {
            prop_assert!(r.realized_edges.contains(&s.edge));
        }
        prop_assert!(r.shuffled.is_empty() || r.shuffle_fusions > 0);
        // Every node lands somewhere, exactly once across layers.
        let placed_total: usize = r.layouts.iter().map(|l| l.placed_count()).sum();
        prop_assert_eq!(placed_total, g.node_count());
        prop_assert_eq!(r.placement.len(), g.node_count());
    }

    #[test]
    fn mapping_grid_occupancy_is_conserved(g in connected_graph_strategy(14, 10)) {
        use oneq::mapping::{map_graph, MappingOptions};
        let r = map_graph(&g, LayerGeometry::new(7, 7), &MappingOptions::default());
        // Dense-grid bookkeeping: per layer, occupied cells = placed
        // fusion nodes + auxiliary routing cells. Nothing leaks, nothing
        // is double-counted.
        for layout in &r.layouts {
            prop_assert_eq!(
                layout.grid().occupied_cells(),
                layout.placed_count() + layout.routing_cells()
            );
            // The incremental bounding box matches a full recount.
            let area = layout.occupied_area();
            let cells: Vec<_> = layout.grid().iter().map(|(p, _)| p).collect();
            if cells.is_empty() {
                prop_assert_eq!(area, 0);
            } else {
                let rmin = cells.iter().map(|p| p.row).min().unwrap();
                let rmax = cells.iter().map(|p| p.row).max().unwrap();
                let cmin = cells.iter().map(|p| p.col).min().unwrap();
                let cmax = cells.iter().map(|p| p.col).max().unwrap();
                prop_assert_eq!(area, (rmax - rmin + 1) * (cmax - cmin + 1));
            }
        }
    }
}
