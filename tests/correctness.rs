//! Semantic correctness across crates: the measurement patterns the
//! compiler consumes really implement their circuits, and the graph states
//! it maps really are the states the translation promises.

use oneq_circuit::{benchmarks, Circuit};
use oneq_mbqc::{flow, translate};
use oneq_sim::{pattern_sim, Pauli, StateVector, Tableau};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn assert_pattern_equals_circuit(circuit: &Circuit, seeds: std::ops::Range<u64>) {
    let reference = StateVector::run_circuit(circuit);
    let pattern = translate::from_circuit(circuit);
    for seed in seeds {
        let mut rng = StdRng::seed_from_u64(seed);
        let state = pattern_sim::simulate(&pattern, &mut rng);
        assert!(
            state.approx_eq_up_to_phase(&reference, 1e-9),
            "pattern != circuit (seed {seed}) for:\n{circuit}"
        );
    }
}

#[test]
fn qft4_pattern_implements_qft() {
    assert_pattern_equals_circuit(&benchmarks::qft(4), 0..5);
}

#[test]
fn small_bv_pattern_implements_bv() {
    assert_pattern_equals_circuit(&benchmarks::bv(&[true, false, true]), 0..5);
}

#[test]
fn small_rca_pattern_implements_adder() {
    assert_pattern_equals_circuit(&benchmarks::rca(4), 0..3);
}

#[test]
fn small_qaoa_pattern_implements_qaoa() {
    let c = benchmarks::qaoa_maxcut(3, &[(0, 1), (1, 2), (0, 2)], 0.37, 1.21);
    assert_pattern_equals_circuit(&c, 0..5);
}

#[test]
fn random_clifford_t_circuits_verify() {
    let mut gen = StdRng::seed_from_u64(7);
    for trial in 0..6 {
        let n = gen.gen_range(2..4usize);
        let mut c = Circuit::new(n);
        for _ in 0..gen.gen_range(4..10) {
            match gen.gen_range(0..5) {
                0 => {
                    c.h(gen.gen_range(0..n));
                }
                1 => {
                    c.t(gen.gen_range(0..n));
                }
                2 => {
                    c.rz(gen.gen_range(0..n), gen.gen_range(-3.0..3.0));
                }
                3 => {
                    let a = gen.gen_range(0..n);
                    let b = (a + 1) % n;
                    c.cz(a.min(b), a.max(b));
                }
                _ => {
                    let a = gen.gen_range(0..n);
                    let b = (a + 1) % n;
                    c.cnot(a, b);
                }
            }
        }
        assert_pattern_equals_circuit(&c, (trial * 10)..(trial * 10 + 3));
    }
}

#[test]
fn translated_graph_state_stabilizers_hold_at_scale() {
    // BV-50: far beyond dense simulation, but the graph state's defining
    // stabilizers X_i Z_{N(i)} are checkable on the tableau simulator.
    let circuit = benchmarks::bv(&[true; 50]);
    let pattern = translate::from_circuit(&circuit);
    let graph = pattern.graph();
    let tableau = Tableau::graph_state(graph);
    for v in graph.nodes().step_by(7) {
        let mut p = Pauli::identity(graph.node_count());
        p.set_x(v.index());
        for &w in graph.neighbors(v) {
            p.set_z(w.index());
        }
        assert!(tableau.stabilizes(&p), "stabilizer of {v} violated");
    }
}

#[test]
fn clifford_patterns_have_single_dependency_layer() {
    // Cross-crate restatement of the paper's §2.2.2 observation.
    for secret_len in [4, 16, 64] {
        let circuit = benchmarks::bv(&vec![true; secret_len]);
        let pattern = translate::from_circuit(&circuit);
        assert_eq!(
            flow::dependency_layers(&pattern).len(),
            1,
            "BV-{secret_len} should have one dependency layer"
        );
    }
}

#[test]
fn ghz_circuit_prepares_ghz() {
    let sv = StateVector::run_circuit(&oneq_circuit::extra::ghz(4));
    assert!((sv.probability(0b0000) - 0.5).abs() < 1e-12);
    assert!((sv.probability(0b1111) - 0.5).abs() < 1e-12);
}

#[test]
fn grover_amplifies_the_marked_item() {
    // 3 data qubits: textbook success probabilities are 25/32 ≈ 0.781
    // after one round and ≈ 0.945 after two.
    for (rounds, expect) in [(1, 0.78125), (2, 0.9453125)] {
        let c = oneq_circuit::extra::grover(3, rounds);
        let sv = StateVector::run_circuit(&c);
        // Marginal over the ancilla (which is uncomputed to |0>).
        let data_mask = 0b111usize;
        let p: f64 = (0..1usize << c.n_qubits())
            .filter(|i| i & data_mask == data_mask)
            .map(|i| sv.probability(i))
            .sum();
        assert!(
            (p - expect).abs() < 1e-6,
            "Grover({rounds}) success probability {p:.4}, want {expect:.4}"
        );
    }
}

#[test]
fn deutsch_jozsa_reads_the_mask() {
    let mask = [true, false, true];
    let c = oneq_circuit::extra::deutsch_jozsa(&mask);
    let sv = StateVector::run_circuit(&c);
    let want: usize = mask
        .iter()
        .enumerate()
        .filter(|(_, &b)| b)
        .map(|(i, _)| 1usize << i)
        .sum();
    let p: f64 = (0..1usize << c.n_qubits())
        .filter(|i| i & 0b111 == want)
        .map(|i| sv.probability(i))
        .sum();
    assert!((p - 1.0).abs() < 1e-9, "DJ must output the mask, got p={p}");
}

#[test]
fn simon_outputs_are_orthogonal_to_the_period() {
    let s = [true, false, true];
    let c = oneq_circuit::extra::simon(&s);
    let sv = StateVector::run_circuit(&c);
    let s_mask = 0b101usize;
    for (i, amp) in sv.amplitudes().iter().enumerate() {
        if amp.norm_sqr() > 1e-12 {
            let y = i & 0b111; // first register
            let parity = (y & s_mask).count_ones() % 2;
            assert_eq!(parity, 0, "outcome y={y:03b} not orthogonal to s");
        }
    }
}

#[test]
fn phase_estimation_is_sharp_for_exact_phases() {
    // theta = k / 2^bits is exactly representable: the counting register
    // collapses to a single deterministic value; theta = 0 reads zero.
    let c = oneq_circuit::extra::phase_estimation(3, 3.0 / 8.0);
    let sv = StateVector::run_circuit(&c);
    let max = sv
        .amplitudes()
        .iter()
        .map(|a| a.norm_sqr())
        .fold(0.0f64, f64::max);
    assert!(
        max > 0.99,
        "exact phase must be deterministic, got {max:.3}"
    );

    let c0 = oneq_circuit::extra::phase_estimation(3, 0.0);
    let sv0 = StateVector::run_circuit(&c0);
    // Counting register zero, eigenstate qubit |1> (bit 3).
    assert!((sv0.probability(0b1000) - 1.0).abs() < 1e-9);
}

#[test]
fn extra_benchmarks_translate_and_verify_as_patterns() {
    assert_pattern_equals_circuit(&oneq_circuit::extra::ghz(3), 0..4);
    assert_pattern_equals_circuit(&oneq_circuit::extra::deutsch_jozsa(&[true, false]), 0..4);
}

#[test]
fn extra_benchmarks_compile() {
    use oneq::{Compiler, CompilerOptions};
    use oneq_hardware::LayerGeometry;
    for c in [
        oneq_circuit::extra::ghz(6),
        oneq_circuit::extra::grover(3, 1),
        oneq_circuit::extra::deutsch_jozsa(&[true, true, false, true]),
        oneq_circuit::extra::simon(&[true, false, true]),
        oneq_circuit::extra::phase_estimation(4, 0.3),
    ] {
        let program = Compiler::new(CompilerOptions::new(LayerGeometry::new(12, 12))).compile(&c);
        assert!(program.fusions > 0);
    }
}

#[test]
fn dependency_layers_scale_with_t_depth() {
    let mut shallow = Circuit::new(4);
    let mut deep = Circuit::new(4);
    for q in 0..4 {
        shallow.j(q, 0.3);
    }
    for _ in 0..4 {
        deep.j(0, 0.3);
    }
    let l_shallow = flow::dependency_layers(&translate::from_circuit(&shallow)).len();
    let l_deep = flow::dependency_layers(&translate::from_circuit(&deep)).len();
    assert!(l_deep > l_shallow);
}
