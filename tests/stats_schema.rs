//! Runtime twin of `oneq-lint`'s static schema check: boots a real
//! server (disk tier enabled, traffic flowing so every conditional
//! block renders), flattens the live `/v1/stats` document into dotted
//! key paths, and pins it against the committed snapshots under
//! `lint/`:
//!
//!   * live keys == `lint/stats_schema_v6.txt` exactly — the server
//!     renders precisely what the snapshot promises, no more, no less;
//!   * live keys ⊇ `lint/stats_schema_v5.txt` — the schema stayed
//!     append-only across the version bump.
//!
//! To regenerate after an intentional schema change, run with
//! `ONEQ_UPDATE_SCHEMA_SNAPSHOT=1`; the test writes the observed key
//! set to `lint/stats_schema_v6.txt.new` for review (the committed
//! snapshot carries a curated header and is never clobbered).

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::time::Duration;

use oneq_service::http;
use oneq_service::server::{Server, ServerConfig, ServerHandle};

const TIMEOUT: Duration = Duration::from_secs(60);

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels below the workspace root")
        .to_path_buf()
}

fn snapshot_keys(path: &Path) -> BTreeSet<String> {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Flattens a JSON document into dotted key paths: `conns.open`,
/// `slowest[]`, `slowest[].route`. The emitter is ours (`ObjWriter`),
/// so this only handles the shapes it produces — objects, arrays,
/// strings, numbers, booleans — and panics loudly on anything else.
fn flatten_keys(json: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let bytes = json.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos, "", &mut out);
    out
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && b[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize, path: &str, out: &mut BTreeSet<String>) {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            loop {
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    break;
                }
                let key = string(b, pos);
                skip_ws(b, pos);
                assert_eq!(b.get(*pos), Some(&b':'), "object key needs a colon");
                *pos += 1;
                let child = if path.is_empty() {
                    key
                } else {
                    format!("{path}.{key}")
                };
                value(b, pos, &child, out);
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b',') {
                    *pos += 1;
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            // Arrays are visible even when empty (`slowest[]`); object
            // containers are not listed, only their leaves.
            let child = format!("{path}[]");
            out.insert(child.clone());
            loop {
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    break;
                }
                value(b, pos, &child, out);
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b',') {
                    *pos += 1;
                }
            }
        }
        Some(b'"') => {
            string(b, pos);
            if !path.is_empty() {
                out.insert(path.to_string());
            }
        }
        Some(_) => {
            // number / true / false / null: consume the bare token.
            while *pos < b.len()
                && !matches!(b[*pos], b',' | b'}' | b']')
                && !b[*pos].is_ascii_whitespace()
            {
                *pos += 1;
            }
            if !path.is_empty() {
                out.insert(path.to_string());
            }
        }
        None => panic!("unexpected end of stats JSON"),
    }
}

fn string(b: &[u8], pos: &mut usize) -> String {
    skip_ws(b, pos);
    assert_eq!(b.get(*pos), Some(&b'"'), "expected a string");
    *pos += 1;
    let start = *pos;
    while *pos < b.len() && b[*pos] != b'"' {
        if b[*pos] == b'\\' {
            *pos += 1;
        }
        *pos += 1;
    }
    let s = String::from_utf8_lossy(&b[start..*pos]).into_owned();
    *pos += 1; // closing quote
    s
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oneqd-stats-schema-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn spawn_with_disk(dir: &Path) -> ServerHandle {
    let config = ServerConfig {
        cache_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    };
    Server::bind("127.0.0.1:0", config)
        .expect("bind loopback")
        .spawn()
        .expect("spawn server thread")
}

#[test]
fn live_stats_keys_match_the_committed_snapshots() {
    let dir = tempdir("golden");
    let handle = spawn_with_disk(&dir);

    // Traffic: one good compile (fills the trace ring, so `slowest` has
    // elements) and one metrics scrape (bumps the telemetry route).
    let qasm = b"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[1];\nh q[0];\n";
    let resp = http::request(
        handle.addr(),
        "POST",
        "/v1/compile?file=g.qasm",
        qasm,
        TIMEOUT,
    )
    .expect("POST /v1/compile");
    assert_eq!(resp.status, 200);
    let resp =
        http::request(handle.addr(), "GET", "/v1/metrics", b"", TIMEOUT).expect("GET /v1/metrics");
    assert_eq!(resp.status, 200);

    let stats =
        http::request(handle.addr(), "GET", "/v1/stats", b"", TIMEOUT).expect("GET /v1/stats");
    assert_eq!(stats.status, 200);
    let body = String::from_utf8(stats.body).expect("stats body is UTF-8");
    let live = flatten_keys(&body);

    let root = workspace_root();
    if std::env::var_os("ONEQ_UPDATE_SCHEMA_SNAPSHOT").is_some() {
        let listing = live.iter().cloned().collect::<Vec<_>>().join("\n");
        let out = root.join("lint/stats_schema_v6.txt.new");
        std::fs::write(&out, format!("{listing}\n")).expect("write snapshot candidate");
        panic!(
            "ONEQ_UPDATE_SCHEMA_SNAPSHOT set: wrote {} — fold it into the committed snapshot and re-run",
            out.display()
        );
    }

    let v6 = snapshot_keys(&root.join("lint/stats_schema_v6.txt"));
    let v5 = snapshot_keys(&root.join("lint/stats_schema_v5.txt"));

    let missing: Vec<_> = v6.difference(&live).collect();
    let extra: Vec<_> = live.difference(&v6).collect();
    assert!(
        missing.is_empty() && extra.is_empty(),
        "live /v1/stats keys diverge from lint/stats_schema_v6.txt\n  promised but not rendered: {missing:?}\n  rendered but not promised: {extra:?}\n  body: {body}"
    );
    let dropped: Vec<_> = v5.difference(&live).collect();
    assert!(
        dropped.is_empty(),
        "v5 keys missing from the live document (schema must stay append-only): {dropped:?}"
    );

    handle.shutdown().expect("clean shutdown");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn memory_only_stats_still_carry_every_unconditional_key() {
    // Without a disk tier the `cache.disk` block collapses to
    // `{"enabled": false}` — everything else in the snapshot must still
    // render, which pins the conditional block's exact boundary.
    let handle = Server::bind("127.0.0.1:0", ServerConfig::default())
        .expect("bind loopback")
        .spawn()
        .expect("spawn server thread");
    let stats =
        http::request(handle.addr(), "GET", "/v1/stats", b"", TIMEOUT).expect("GET /v1/stats");
    let body = String::from_utf8(stats.body).expect("stats body is UTF-8");
    let live = flatten_keys(&body);

    let root = workspace_root();
    let v6 = snapshot_keys(&root.join("lint/stats_schema_v6.txt"));
    let disk_only: BTreeSet<_> = v6
        .iter()
        .filter(|k| k.starts_with("cache.disk.") && *k != "cache.disk.enabled")
        .collect();
    // With no traffic the slowest ring is empty: element keys are absent.
    let element_only: BTreeSet<_> = v6.iter().filter(|k| k.starts_with("slowest[].")).collect();
    for key in &v6 {
        if disk_only.contains(key) || element_only.contains(key) {
            continue;
        }
        assert!(
            live.contains(key),
            "unconditional key `{key}` missing from a memory-only /v1/stats: {body}"
        );
    }
    handle.shutdown().expect("clean shutdown");
}
