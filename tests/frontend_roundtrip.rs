//! Frontend round-trip and unitary-equivalence tests.
//!
//! * Property: a random QASM-expressible `Circuit` survives
//!   `to_qasm()` → parse → lower with a bit-identical gate list.
//! * The `u1/u2/u3/ry` lowerings reproduce the standard qelib1 matrices
//!   on the state-vector simulator, and the prelude's composite gates
//!   (`crz`, `cu3`, `ch`, `cy`) act as their controlled references.

use oneq_circuit::{Circuit, Gate};
use oneq_frontend::parse_circuit;
use oneq_sim::{Complex, StateVector};
use proptest::prelude::*;
use std::f64::consts::{FRAC_1_SQRT_2, PI};

/// Strategy: a random circuit over the QASM-exportable gate set (all IR
/// gates except `J`, which exports as its `rz; h` definition). Angles mix
/// exact `pi` fractions (exercising the `p*pi/q` printer) with arbitrary
/// decimals (exercising the shortest-round-trip fallback).
fn qasm_circuit_strategy(max_q: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    (1..max_q).prop_flat_map(move |n| {
        proptest::collection::vec(
            (0..15usize, 0..n, 0..n, -10.0..10.0f64, 0..8usize),
            0..max_gates,
        )
        .prop_map(move |specs| {
            let mut c = Circuit::new(n);
            for (kind, a, b, raw_angle, pick) in specs {
                // Half the angles are exact pi fractions (incl. negative).
                let angle = if pick % 2 == 0 {
                    raw_angle
                } else {
                    let signed = if pick >= 4 { -PI } else { PI };
                    let k = 1u32 << (pick % 4);
                    if k == 1 {
                        signed
                    } else {
                        signed / f64::from(k)
                    }
                };
                let b2 = if a == b { (a + 1) % n } else { b };
                match kind {
                    0 => c.h(a),
                    1 => c.x(a),
                    2 => c.y(a),
                    3 => c.z(a),
                    4 => c.s(a),
                    5 => c.sdg(a),
                    6 => c.t(a),
                    7 => c.tdg(a),
                    8 => c.rz(a, angle),
                    9 => c.rx(a, angle),
                    10 if n >= 2 => c.cz(a, b2),
                    11 if n >= 2 => c.cnot(a, b2),
                    12 if n >= 2 => c.swap(a, b2),
                    13 if n >= 2 => c.cp(a, b2, angle),
                    14 if n >= 3 => {
                        let (c1, c2, t) = (a % n, (a + 1) % n, (a + 2) % n);
                        c.ccx(c1, c2, t)
                    }
                    _ => c.h(a), // fallback when the width is too small
                };
            }
            c
        })
    })
}

proptest! {
    #[test]
    fn to_qasm_round_trips_bit_identically(c in qasm_circuit_strategy(7, 40)) {
        let qasm = c.to_qasm();
        let parsed = parse_circuit(&qasm)
            .unwrap_or_else(|e| panic!("export must re-parse, got:\n{e}\n--- qasm:\n{qasm}"));
        prop_assert_eq!(parsed.n_qubits(), c.n_qubits());
        prop_assert_eq!(parsed.gates(), c.gates());
    }
}

#[test]
fn j_gate_exports_as_equivalent_rz_h() {
    let mut c = Circuit::new(1);
    c.j(0, PI / 5.0);
    let parsed = parse_circuit(&c.to_qasm()).unwrap();
    assert_eq!(
        parsed.gates().len(),
        2,
        "J must export as its rz; h definition"
    );
    let a = StateVector::run_circuit(&c);
    let b = StateVector::run_circuit(&parsed);
    assert!(a.approx_eq_up_to_phase(&b, 1e-9));
}

fn parse_1q(body: &str) -> Circuit {
    parse_circuit(&format!(
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[1];\n{body}"
    ))
    .expect("test program must parse")
}

fn parse_2q(body: &str) -> Circuit {
    parse_circuit(&format!(
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\n{body}"
    ))
    .expect("test program must parse")
}

/// The standard qelib1 u3 matrix:
/// `[[cos(θ/2), -e^{iλ} sin(θ/2)], [e^{iφ} sin(θ/2), e^{i(φ+λ)} cos(θ/2)]]`.
fn u3_matrix(theta: f64, phi: f64, lambda: f64) -> [[Complex; 2]; 2] {
    let c = (theta / 2.0).cos();
    let s = (theta / 2.0).sin();
    [
        [Complex::from(c), -Complex::from_polar(s, lambda)],
        [
            Complex::from_polar(s, phi),
            Complex::from_polar(c, phi + lambda),
        ],
    ]
}

/// Runs `body` on |0> (after an initial `h` to probe both columns) and
/// compares against applying `reference` to the same input.
fn assert_matches_matrix(body: &str, reference: [[Complex; 2]; 2]) {
    let lowered = parse_1q(&format!("h q[0];\n{body}"));
    let got = StateVector::run_circuit(&lowered);
    let mut want = StateVector::zero_state(1);
    want.apply_gate(&Gate::H(oneq_circuit::Qubit::new(0)));
    want.apply_single(0, reference);
    assert!(
        got.approx_eq_up_to_phase(&want, 1e-9),
        "{body} does not match its reference matrix"
    );
}

#[test]
fn u_family_matches_qelib1_matrices() {
    let (theta, phi, lambda) = (0.3, 0.7, 1.1);
    assert_matches_matrix(
        &format!("u3({theta},{phi},{lambda}) q[0];"),
        u3_matrix(theta, phi, lambda),
    );
    assert_matches_matrix(
        &format!("U({theta},{phi},{lambda}) q[0];"),
        u3_matrix(theta, phi, lambda),
    );
    assert_matches_matrix(
        &format!("u2({phi},{lambda}) q[0];"),
        u3_matrix(PI / 2.0, phi, lambda),
    );
    assert_matches_matrix(&format!("u1({lambda}) q[0];"), u3_matrix(0.0, 0.0, lambda));
    // ry(θ) = u3(θ, 0, 0): the real rotation matrix.
    assert_matches_matrix(&format!("ry({theta}) q[0];"), u3_matrix(theta, 0.0, 0.0));
}

fn assert_amps(sv: &StateVector, want: &[(usize, Complex)]) {
    for (i, amp) in sv.amplitudes().iter().enumerate() {
        let expect = want
            .iter()
            .find(|(j, _)| *j == i)
            .map_or(Complex::ZERO, |&(_, a)| a);
        assert!(
            amp.approx_eq(expect, 1e-9),
            "amplitude {i}: got {amp}, want {expect}"
        );
    }
}

#[test]
fn cu3_controls_the_u3_matrix() {
    let (theta, phi, lambda) = (0.9, 0.4, 1.3);
    // Control q[0] in |+>, target q[1] in |0>: the control=1 branch picks
    // up the first u3 column.
    let c = parse_2q(&format!("h q[0];\ncu3({theta},{phi},{lambda}) q[0], q[1];"));
    let sv = StateVector::run_circuit(&c);
    let m = u3_matrix(theta, phi, lambda);
    assert_amps(
        &sv,
        &[
            (0b00, Complex::from(FRAC_1_SQRT_2)),
            (0b01, m[0][0].scale(FRAC_1_SQRT_2)),
            (0b11, m[1][0].scale(FRAC_1_SQRT_2)),
        ],
    );
}

#[test]
fn crz_applies_symmetric_half_phases() {
    let lambda = 0.8;
    let c = parse_2q(&format!("h q[0];\nh q[1];\ncrz({lambda}) q[0], q[1];"));
    let sv = StateVector::run_circuit(&c);
    assert_amps(
        &sv,
        &[
            (0b00, Complex::from(0.5)),
            (0b10, Complex::from(0.5)),
            (0b01, Complex::from_polar(0.5, -lambda / 2.0)),
            (0b11, Complex::from_polar(0.5, lambda / 2.0)),
        ],
    );
}

#[test]
fn ch_and_cy_act_as_controlled_gates() {
    // ch: controlled-H up to a global phase (the qelib1 body carries a
    // uniform e^{i*pi/4}). Reference: exact C-H from
    // `ry(-pi/4); cz; ry(pi/4)` on the target.
    let c = parse_2q("h q[0];\nch q[0], q[1];");
    let got = StateVector::run_circuit(&c);
    let mut want = StateVector::zero_state(2);
    want.apply_gate(&Gate::H(oneq_circuit::Qubit::new(0)));
    let ry = |sv: &mut StateVector, a: f64| {
        let c = Complex::from((a / 2.0).cos());
        let s = Complex::from((a / 2.0).sin());
        sv.apply_single(1, [[c, -s], [s, c]]);
    };
    ry(&mut want, -PI / 4.0);
    want.apply_cz(0, 1);
    ry(&mut want, PI / 4.0);
    assert!(got.approx_eq_up_to_phase(&want, 1e-9), "ch mismatch");

    // cy: |+>|0> -> (|00> + i|11>)/sqrt2.
    let c = parse_2q("h q[0];\ncy q[0], q[1];");
    let got = StateVector::run_circuit(&c);
    assert_amps(
        &got,
        &[
            (0b00, Complex::from(FRAC_1_SQRT_2)),
            (0b11, Complex::new(0.0, FRAC_1_SQRT_2)),
        ],
    );
}

#[test]
fn fixture_style_header_with_comments_parses() {
    let c = parse_circuit(
        "// a comment header\n// another\nOPENQASM 2.0;\ninclude \"qelib1.inc\";\n\
         qreg q[2];\nh q[0]; cx q[0], q[1]; // trailing comment",
    )
    .unwrap();
    assert_eq!(c.gate_count(), 2);
}
