//! Workspace-level smoke test: the public `Compiler`/`CompiledProgram` API
//! compiles a small benchmark circuit end to end and reports non-trivial
//! per-stage statistics. This is the minimum bar every PR must keep green.

use oneq::{Compiler, CompilerOptions};
use oneq_circuit::benchmarks;
use oneq_hardware::LayerGeometry;

#[test]
fn public_api_compiles_a_benchmark_circuit_with_nontrivial_stats() {
    let circuit = benchmarks::qft(6);
    let options = CompilerOptions::new(LayerGeometry::new(8, 8));
    let program = Compiler::new(options).compile(&circuit);

    // The paper's two headline metrics must be populated.
    assert!(
        program.depth >= 1,
        "physical depth must be at least one layer"
    );
    assert!(program.fusions > 0, "a QFT-6 compile performs fusions");

    // Every stage must have done real work.
    let stats = &program.stats;
    assert!(
        stats.graph_state_nodes > 0,
        "translation produced no graph-state nodes"
    );
    assert!(
        stats.dependency_layers > 0,
        "causal-flow analysis produced no layers"
    );
    assert!(stats.partitions > 0, "partitioning produced no partitions");
    assert!(
        stats.fusion_graph_nodes > 0,
        "fusion-graph generation produced no nodes"
    );
    assert!(
        stats.direct_fusions + stats.routed_fusions + stats.shuffle_fusions > 0,
        "mapping produced no fusions at all"
    );
}
