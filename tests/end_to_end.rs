//! Cross-crate integration tests: circuit → pattern → partition → fusion
//! graph → mapping, end to end through the public APIs.

use oneq::{Compiler, CompilerOptions};
use oneq_bench::{BenchKind, SEED};
use oneq_hardware::{LayerGeometry, ResourceKind};

#[test]
fn all_benchmarks_compile_at_small_sizes() {
    for kind in BenchKind::ALL {
        let n = if kind == BenchKind::Rca { 8 } else { 9 };
        let circuit = kind.circuit(n, SEED);
        let program =
            Compiler::new(CompilerOptions::new(LayerGeometry::new(12, 12))).compile(&circuit);
        assert!(program.depth >= 1, "{}-{n}", kind.name());
        assert!(
            program.fusions >= program.stats.graph_state_edges,
            "{}-{n}: every graph-state edge costs at least one fusion",
            kind.name()
        );
        assert!(
            program.stats.fusion_graph_nodes >= program.stats.graph_state_nodes,
            "{}-{n}: synthesis never shrinks the node count",
            kind.name()
        );
    }
}

#[test]
fn compilation_is_deterministic() {
    let circuit = BenchKind::Qft.circuit(9, SEED);
    let compile = || {
        let p = Compiler::new(CompilerOptions::new(LayerGeometry::new(10, 10))).compile(&circuit);
        (p.depth, p.fusions, p.stats)
    };
    assert_eq!(compile(), compile());
}

#[test]
fn oneq_beats_baseline_on_every_benchmark() {
    for kind in BenchKind::ALL {
        let cmp = oneq_bench::compare(kind, 16, SEED, ResourceKind::LINE3);
        assert!(
            cmp.depth_improvement() > 2.0,
            "{}: depth improvement only {:.1}",
            cmp.label,
            cmp.depth_improvement()
        );
        assert!(
            cmp.fusion_improvement() > 10.0,
            "{}: fusion improvement only {:.1}",
            cmp.label,
            cmp.fusion_improvement()
        );
    }
}

#[test]
fn bv_is_the_easy_case() {
    // The paper's headline: BV (acyclic, planar, Clifford) compiles to a
    // handful of layers and has the largest fusion improvement.
    let bv = oneq_bench::compare(BenchKind::Bv, 16, SEED, ResourceKind::LINE3);
    let qft = oneq_bench::compare(BenchKind::Qft, 16, SEED, ResourceKind::LINE3);
    assert!(bv.depth <= 5, "BV-16 depth {}", bv.depth);
    assert!(
        bv.fusion_improvement() > qft.fusion_improvement(),
        "BV fusion improvement ({:.0}) should exceed QFT's ({:.0})",
        bv.fusion_improvement(),
        qft.fusion_improvement()
    );
}

#[test]
fn improvement_grows_or_holds_with_size() {
    let small = oneq_bench::compare(BenchKind::Qft, 16, SEED, ResourceKind::LINE3);
    let large = oneq_bench::compare(BenchKind::Qft, 25, SEED, ResourceKind::LINE3);
    assert!(
        large.fusion_improvement() >= small.fusion_improvement() * 0.8,
        "improvement should stay stable or grow with size"
    );
}

#[test]
fn all_resource_kinds_compile_qft16() {
    for kind in [
        ResourceKind::LINE3,
        ResourceKind::LINE4,
        ResourceKind::STAR4,
        ResourceKind::RING4,
    ] {
        let cmp = oneq_bench::compare(BenchKind::Qft, 16, SEED, kind);
        assert!(cmp.fusion_improvement() > 5.0, "{kind}");
    }
}

#[test]
fn rectangular_layers_work() {
    let circuit = BenchKind::Qaoa.circuit(9, SEED);
    for ratio in [1.0, 1.5, 2.1, 2.6] {
        let geometry = LayerGeometry::from_area_and_ratio(144, ratio);
        let program = Compiler::new(CompilerOptions::new(geometry)).compile(&circuit);
        assert!(program.depth >= 1, "ratio {ratio}");
    }
}

#[test]
fn extended_layers_compile() {
    let circuit = BenchKind::Qft.circuit(9, SEED);
    let base = CompilerOptions::new(LayerGeometry::new(6, 6));
    let flat = Compiler::new(base).compile(&circuit);
    let extended = Compiler::new(base.with_extension(3)).compile(&circuit);
    assert!(flat.depth >= 1 && extended.depth >= 1);
    // Extension merges layers: fewer layouts, each covering 3 cycles.
    assert!(extended.layouts.len() <= flat.layouts.len());
}

#[test]
fn larger_physical_area_reduces_or_holds_depth() {
    let circuit = BenchKind::Qft.circuit(16, SEED);
    let small = Compiler::new(CompilerOptions::new(LayerGeometry::new(12, 12))).compile(&circuit);
    let large = Compiler::new(CompilerOptions::new(LayerGeometry::new(32, 32))).compile(&circuit);
    assert!(
        large.depth <= small.depth + 2,
        "area 1024 depth {} should not exceed area 144 depth {}",
        large.depth,
        small.depth
    );
}
