#!/usr/bin/env python3
"""Compare two BENCH_service.json files: previous vs current.

Usage: compare_bench.py PREVIOUS.json CURRENT.json [--fail-pct P]

Prints a per-mode markdown table of throughput and latency percentiles
with the relative change, plus the keep-alive and warm-restart speedup
ratios when both files carry them. Exit code is 0 unless `--fail-pct P`
is given and some mode's throughput regressed by more than P percent —
CI runs it without the flag, as an informational trend line (shared
runners are too noisy for a hard perf gate).

Schema tolerant: modes/metrics present in only one file are reported as
`n/a` instead of failing, so the comparison survives its own schema
bumps (v2 -> v3 renamed cache outcome keys but kept mode metrics).
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"compare_bench: cannot read {path}: {e}")


def dig(obj, *keys):
    for key in keys:
        if not isinstance(obj, dict) or key not in obj:
            return None
        obj = obj[key]
    return obj


def fmt(value, unit=""):
    if value is None:
        return "n/a"
    if unit == "ms":
        return f"{value / 1e6:.2f} ms"
    if unit == "x":
        return f"{value:.2f}x"
    return f"{value:.1f}"


def delta_pct(prev, curr):
    if prev is None or curr is None or prev == 0:
        return None
    return 100.0 * (curr - prev) / prev


def fmt_delta(pct, higher_is_better):
    if pct is None:
        return "n/a"
    arrow = ""
    if abs(pct) >= 0.05:
        improved = (pct > 0) == higher_is_better
        arrow = " ✓" if improved else " ✗"
    return f"{pct:+.1f}%{arrow}"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("previous")
    parser.add_argument("current")
    parser.add_argument(
        "--fail-pct",
        type=float,
        default=None,
        metavar="P",
        help="exit 1 if any mode's throughput drops more than P percent",
    )
    args = parser.parse_args()

    prev, curr = load(args.previous), load(args.current)
    print("### Served-axis bench: previous vs current\n")
    print(
        f"previous schema `{prev.get('schema')}`, "
        f"current schema `{curr.get('schema')}`, "
        f"{curr.get('requests_per_mode')} requests/mode "
        f"at concurrency {curr.get('concurrency')}\n"
    )

    # (label, path-within-mode, unit, higher_is_better)
    metrics = [
        ("throughput (req/s)", ("throughput_rps",), "", True),
        ("latency p50", ("latency_ns", "p50"), "ms", False),
        ("latency p99", ("latency_ns", "p99"), "ms", False),
    ]
    modes = sorted(
        set(dig(prev, "modes") or {}) | set(dig(curr, "modes") or {})
    )
    regressed = []
    print("| mode | metric | previous | current | change |")
    print("|---|---|---|---|---|")
    for mode in modes:
        for label, path, unit, higher_is_better in metrics:
            p = dig(prev, "modes", mode, *path)
            c = dig(curr, "modes", mode, *path)
            pct = delta_pct(p, c)
            print(
                f"| {mode} | {label} | {fmt(p, unit)} | {fmt(c, unit)} "
                f"| {fmt_delta(pct, higher_is_better)} |"
            )
            if (
                label.startswith("throughput")
                and pct is not None
                and args.fail_pct is not None
                and pct < -args.fail_pct
            ):
                regressed.append((mode, pct))

    for label, keys in [
        ("keep_alive_speedup", ("keep_alive_speedup",)),
        ("warm_restart speedup", ("warm_restart", "warm_speedup")),
    ]:
        p, c = dig(prev, *keys), dig(curr, *keys)
        if p is not None or c is not None:
            print(f"| — | {label} | {fmt(p, 'x')} | {fmt(c, 'x')} | |")

    if regressed:
        worst = ", ".join(f"{m} {pct:+.1f}%" for m, pct in regressed)
        print(f"\nthroughput regression beyond --fail-pct: {worst}")
        sys.exit(1)


if __name__ == "__main__":
    main()
