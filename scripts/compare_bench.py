#!/usr/bin/env python3
"""Compare two bench artifacts: previous vs current.

Usage: compare_bench.py PREVIOUS.json CURRENT.json [--fail-pct P]

Handles both artifact families the repo produces and picks the
comparison from the *current* file's schema:

* `oneq-bench-service/*` (loadgen's BENCH_service.json): a per-mode
  markdown table of throughput and latency percentiles with the relative
  change, plus the keep-alive / warm-restart speedup ratios and the
  adversarial event-loop throughput when both files carry them. Files of
  v5 or later also carry `server_metrics` — per-stage and per-tier
  percentiles scraped off the daemon's own histograms — which join the
  table and the gate.
* `oneq-bench-pipeline/*` (sweep's BENCH_pipeline.json): a per-benchmark
  table of wall and mapping times keyed on (bench, qubits, geometry,
  extension), plus the sweep totals.

A missing PREVIOUS file is not an error: the first run of a new artifact
has nothing to compare against, so the script prints a note and exits 0
(CI fetches the previous artifact best-effort). Exit code is otherwise 0
unless `--fail-pct P` is given and some throughput or server-side stage
p99 (service) or wall time (pipeline) regressed by more than P percent.
CI gates the pipeline comparison with `--fail-pct 50` (stage wall times
are stable enough for a generous threshold) and the service comparison
with `--fail-pct 75`: client-observed throughput on shared runners is
noisy, and the server-side percentiles come off log-linear histogram
buckets with up to 12.5% quantization error, so only a gross regression
trips the gate.

Schema tolerant: modes/metrics present in only one file are reported as
`n/a` instead of failing, so the comparison survives its own schema
bumps (v2 -> v3 renamed cache outcome keys, v3 -> v4 added the
event_loop block; both kept mode metrics).
"""

import argparse
import json
import sys


def load(path, optional=False):
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        if optional:
            return None
        sys.exit(f"compare_bench: cannot read {path}: file not found")
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"compare_bench: cannot read {path}: {e}")


def dig(obj, *keys):
    for key in keys:
        if not isinstance(obj, dict) or key not in obj:
            return None
        obj = obj[key]
    return obj


def fmt(value, unit=""):
    if value is None:
        return "n/a"
    if unit == "ms":
        return f"{value / 1e6:.2f} ms"
    if unit == "x":
        return f"{value:.2f}x"
    return f"{value:.1f}"


def delta_pct(prev, curr):
    if prev is None or curr is None or prev == 0:
        return None
    return 100.0 * (curr - prev) / prev


def fmt_delta(pct, higher_is_better):
    if pct is None:
        return "n/a"
    arrow = ""
    if abs(pct) >= 0.05:
        improved = (pct > 0) == higher_is_better
        arrow = " ✓" if improved else " ✗"
    return f"{pct:+.1f}%{arrow}"


def compare_service(prev, curr, fail_pct):
    print("### Served-axis bench: previous vs current\n")
    print(
        f"previous schema `{prev.get('schema')}`, "
        f"current schema `{curr.get('schema')}`, "
        f"{curr.get('requests_per_mode')} requests/mode "
        f"at concurrency {curr.get('concurrency')}\n"
    )

    # (label, path-within-mode, unit, higher_is_better)
    metrics = [
        ("throughput (req/s)", ("throughput_rps",), "", True),
        ("latency p50", ("latency_ns", "p50"), "ms", False),
        ("latency p99", ("latency_ns", "p99"), "ms", False),
    ]
    modes = sorted(
        set(dig(prev, "modes") or {}) | set(dig(curr, "modes") or {})
    )
    regressed = []
    print("| mode | metric | previous | current | change |")
    print("|---|---|---|---|---|")
    for mode in modes:
        for label, path, unit, higher_is_better in metrics:
            p = dig(prev, "modes", mode, *path)
            c = dig(curr, "modes", mode, *path)
            pct = delta_pct(p, c)
            print(
                f"| {mode} | {label} | {fmt(p, unit)} | {fmt(c, unit)} "
                f"| {fmt_delta(pct, higher_is_better)} |"
            )
            if (
                label.startswith("throughput")
                and pct is not None
                and fail_pct is not None
                and pct < -fail_pct
            ):
                regressed.append((mode, pct))

    # Server-side compile-stage and cache-tier percentiles (the
    # `server_metrics` block, v5+): scraped off the daemon's own
    # histograms, so they cover executed compiles only and exclude
    # client/network time. Stage p99 joins the gate — it is the quantity
    # this block exists to watch; tier lookups stay informational (the
    # `miss` tier embeds whole compiles and swings with the fixture mix).
    for block, kind in (("stages", "stage"), ("tiers", "tier")):
        names = sorted(
            set(dig(prev, "server_metrics", block) or {})
            | set(dig(curr, "server_metrics", block) or {})
        )
        for name in names:
            for pkey in ("p50_ns", "p99_ns"):
                p = dig(prev, "server_metrics", block, name, pkey)
                c = dig(curr, "server_metrics", block, name, pkey)
                pct = delta_pct(p, c)
                label = f"{kind} {pkey.removesuffix('_ns')}"
                print(
                    f"| {name} | {label} | {fmt(p, 'ms')} | {fmt(c, 'ms')} "
                    f"| {fmt_delta(pct, False)} |"
                )
                if (
                    block == "stages"
                    and pkey == "p99_ns"
                    and pct is not None
                    and fail_pct is not None
                    and pct > fail_pct
                ):
                    regressed.append((f"{name} {label}", pct))

    # The adversarial event-loop run rides the same table when present.
    p = dig(prev, "event_loop", "throughput_rps")
    c = dig(curr, "event_loop", "throughput_rps")
    if p is not None or c is not None:
        print(
            f"| event_loop | throughput (req/s) | {fmt(p)} | {fmt(c)} "
            f"| {fmt_delta(delta_pct(p, c), True)} |"
        )

    for label, keys in [
        ("keep_alive_speedup", ("keep_alive_speedup",)),
        ("warm_restart speedup", ("warm_restart", "warm_speedup")),
    ]:
        p, c = dig(prev, *keys), dig(curr, *keys)
        if p is not None or c is not None:
            print(f"| — | {label} | {fmt(p, 'x')} | {fmt(c, 'x')} | |")

    return regressed


def run_key(run):
    return (
        run.get("bench"),
        run.get("qubits"),
        run.get("rows"),
        run.get("cols"),
        run.get("extension_factor"),
    )


def run_label(key):
    bench, qubits, rows, cols, ext = key
    return f"{bench} q{qubits} {rows}x{cols} ext{ext}"


def compare_pipeline(prev, curr, fail_pct):
    print("### Pipeline bench: previous vs current\n")
    print(
        f"previous schema `{prev.get('schema')}`, "
        f"current schema `{curr.get('schema')}`, "
        f"quick={curr.get('quick')}, resource `{curr.get('resource')}`\n"
    )

    prev_runs = {run_key(r): r for r in prev.get("runs") or []}
    curr_runs = {run_key(r): r for r in curr.get("runs") or []}
    metrics = [
        ("wall", ("timings_ns", "wall")),
        ("mapping", ("timings_ns", "mapping")),
    ]
    regressed = []
    print("| bench | metric | previous | current | change |")
    print("|---|---|---|---|---|")
    for key in sorted(
        set(prev_runs) | set(curr_runs), key=lambda k: [str(x) for x in k]
    ):
        for label, path in metrics:
            p = dig(prev_runs.get(key, {}), *path)
            c = dig(curr_runs.get(key, {}), *path)
            pct = delta_pct(p, c)
            print(
                f"| {run_label(key)} | {label} | {fmt(p, 'ms')} "
                f"| {fmt(c, 'ms')} | {fmt_delta(pct, False)} |"
            )
            if (
                label == "wall"
                and pct is not None
                and fail_pct is not None
                and pct > fail_pct
            ):
                regressed.append((run_label(key), pct))

    for label in ("wall_ns", "mapping_ns"):
        p, c = dig(prev, "totals", label), dig(curr, "totals", label)
        if p is not None or c is not None:
            print(
                f"| totals | {label.removesuffix('_ns')} | {fmt(p, 'ms')} "
                f"| {fmt(c, 'ms')} | {fmt_delta(delta_pct(p, c), False)} |"
            )

    return regressed


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("previous")
    parser.add_argument("current")
    parser.add_argument(
        "--fail-pct",
        type=float,
        default=None,
        metavar="P",
        help="exit 1 on a throughput or server stage-p99 (service) or "
        "wall-time (pipeline) regression beyond P percent",
    )
    args = parser.parse_args()

    curr = load(args.current)
    prev = load(args.previous, optional=True)
    if prev is None:
        print(
            f"compare_bench: no previous artifact at {args.previous} — "
            "nothing to compare against (first run of this artifact?); "
            f"current schema `{curr.get('schema')}`"
        )
        return

    family = "pipeline" if "pipeline" in str(curr.get("schema")) else "service"
    prev_family = (
        "pipeline" if "pipeline" in str(prev.get("schema")) else "service"
    )
    if family != prev_family:
        print(
            f"compare_bench: artifact families differ (previous "
            f"`{prev.get('schema')}`, current `{curr.get('schema')}`) — "
            "skipping the comparison"
        )
        return

    if family == "pipeline":
        regressed = compare_pipeline(prev, curr, args.fail_pct)
        what = "wall-time"
    else:
        regressed = compare_service(prev, curr, args.fail_pct)
        what = "throughput/stage-p99"

    if regressed:
        worst = ", ".join(f"{m} {pct:+.1f}%" for m, pct in regressed)
        print(f"\n{what} regression beyond --fail-pct: {worst}")
        sys.exit(1)


if __name__ == "__main__":
    main()
